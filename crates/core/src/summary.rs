//! Per-broker subscription summaries and the Algorithm 1 matcher.
//!
//! The paradigm of the paper (§2.3) is *subscription-summary-centric*:
//! each incoming subscription is dissolved into its attribute–value
//! constraints, which merge into the per-attribute summary structures
//! ([`RangeSummary`] for arithmetic attributes, [`PatternSummary`] for
//! strings). There are no subscription entities inside a summary — only
//! rows with subscription-id lists.
//!
//! Matching an event (Algorithm 1, §3.3) scans the summary structure of
//! each event attribute, collects the satisfied id lists, counts per-id
//! how many *attributes* were satisfied, and reports the ids whose counter
//! equals the number of attributes recorded in their `c3` mask.

use serde::{Deserialize, Serialize};

use subsum_telemetry::{Count, Stage};
use subsum_types::{Event, NormalizedAttr, Schema, Subscription, SubscriptionId};

use crate::aacs::RangeSummary;
use crate::idlist::{DenseId, IdList, SubIdList};
use crate::plan::{MatchPlan, PlanCell};
use crate::sacs::PatternSummary;

/// Telemetry stages of the summary hot paths (recorded only while the
/// global recorder is enabled; see `subsum-telemetry`).
static STAGE_INSERT: Stage = Stage::new(subsum_telemetry::names::CORE_SUMMARY_INSERT);
static STAGE_MERGE: Stage = Stage::new(subsum_telemetry::names::CORE_SUMMARY_MERGE);
static STAGE_MATCH: Stage = Stage::new(subsum_telemetry::names::CORE_SUMMARY_MATCH);
/// Matches served by a warm (previously used) [`MatchScratch`] — i.e.
/// matches that performed no steady-state heap allocation.
static CNT_SCRATCH_REUSE: Count = Count::new(subsum_telemetry::names::MATCH_SCRATCH_REUSE);
/// Dense postings processed by the counter kernel (the `P` of the T₂
/// term), across all events.
static CNT_DENSE_HITS: Count = Count::new(subsum_telemetry::names::MATCH_DENSE_HITS);
/// Wholesale intern-table rebuilds (wire decode and summary merge).
static CNT_INTERN_REBUILDS: Count = Count::new(subsum_telemetry::names::MATCH_INTERN_REBUILDS);
/// Posting renumberings caused by an interactive insert landing in the
/// middle of the dense order (out-of-order subscription ids).
static CNT_INTERN_RENUMBERS: Count = Count::new(subsum_telemetry::names::MATCH_INTERN_RENUMBERS);
/// Match-scratch growth events (per-dense-id arrays resized to a larger
/// population); zero at steady state.
static CNT_SCRATCH_GROWS: Count = Count::new(subsum_telemetry::names::MATCH_SCRATCH_GROWS);

/// The per-summary intern table: dense id `d` stands for `ids[d]`.
///
/// Invariant: `ids` is sorted and deduplicated, so **dense order equals
/// `SubscriptionId` order** at all times. Sorted dense posting lists
/// therefore resolve to sorted subscription-id lists with no per-event
/// sorting. `required[d]` caches `ids[d].mask.count()` — the number of
/// satisfied attributes the counter kernel must see before reporting
/// dense id `d`; it is derived from the masks and is rebuilt, never
/// serialized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(from = "InternTableWire", into = "InternTableWire")]
pub(crate) struct InternTable {
    ids: SubIdList,
    required: Vec<u32>, // lint: derived
}

/// The serialized shape of an [`InternTable`]: only the id list travels;
/// the `required` counters are reconstructed from the id masks.
#[derive(Serialize, Deserialize)]
#[serde(rename = "InternTable")]
struct InternTableWire {
    ids: SubIdList,
}

impl From<InternTable> for InternTableWire {
    fn from(t: InternTable) -> Self {
        InternTableWire { ids: t.ids }
    }
}

impl From<InternTableWire> for InternTable {
    fn from(w: InternTableWire) -> Self {
        InternTable::from_ids(w.ids)
    }
}

impl InternTable {
    /// Builds a table over a sorted, deduplicated id list.
    fn from_ids(ids: SubIdList) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "intern ids sorted");
        let required = ids.iter().map(|id| id.mask.count()).collect();
        InternTable { ids, required }
    }

    /// Number of interned ids (== the dense id space size).
    fn len(&self) -> usize {
        self.ids.len()
    }

    /// The dense id of `id`, or the rank where it would be interned.
    fn position(&self, id: &subsum_types::SubscriptionId) -> Result<usize, usize> {
        self.ids.binary_search(id)
    }

    /// The full id behind dense id `d`.
    pub(crate) fn resolve(&self, d: DenseId) -> subsum_types::SubscriptionId {
        self.ids[d as usize]
    }

    /// The satisfied-attribute count dense id `d` needs to match.
    fn required(&self, d: usize) -> u32 {
        self.required[d]
    }

    /// Interns `id` at rank `pos` (caller renumbers postings first).
    fn insert_at(&mut self, pos: usize, id: subsum_types::SubscriptionId) {
        self.ids.insert(pos, id);
        self.required.insert(pos, id.mask.count());
    }

    /// Drops the slot at rank `pos` (caller renumbers postings).
    fn remove_at(&mut self, pos: usize) {
        self.ids.remove(pos);
        self.required.remove(pos);
    }

    /// The sorted interned id list (dense id `d` ↦ `ids[d]`).
    pub(crate) fn ids_slice(&self) -> &SubIdList {
        &self.ids
    }

    /// The per-dense-id satisfied-attribute thresholds.
    pub(crate) fn required_slice(&self) -> &[u32] {
        &self.required
    }

    /// Unions two tables into a fresh one, returning monotone translation
    /// arrays from each side's dense space into the union's. Linear in
    /// the total id count, so summary merging stays linear overall.
    fn union_translate(&self, other: &InternTable) -> (InternTable, Vec<DenseId>, Vec<DenseId>) {
        let mut ids = SubIdList::with_capacity(self.ids.len() + other.ids.len());
        let mut trans_self = Vec::with_capacity(self.ids.len());
        let mut trans_other = Vec::with_capacity(other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    trans_self.push(ids.len() as DenseId);
                    ids.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    trans_other.push(ids.len() as DenseId);
                    ids.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    trans_self.push(ids.len() as DenseId);
                    trans_other.push(ids.len() as DenseId);
                    ids.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < self.ids.len() {
            trans_self.push(ids.len() as DenseId);
            ids.push(self.ids[i]);
            i += 1;
        }
        while j < other.ids.len() {
            trans_other.push(ids.len() as DenseId);
            ids.push(other.ids[j]);
            j += 1;
        }
        (InternTable::from_ids(ids), trans_self, trans_other)
    }
}

/// A complete subscription summary for one (or, after merging, several)
/// broker(s): one AACS per arithmetic attribute and one SACS per string
/// attribute of the schema.
///
/// # Guarantees
///
/// * **No false negatives.** If a subscription inserted into the summary
///   matches an event exactly, [`BrokerSummary::match_event`] reports its
///   id.
/// * **False positives possible.** SACS generalization (`m*t` standing in
///   for `microsoft`) and per-attribute union semantics for multi-pattern
///   conjunctions can report non-matching ids; the owning broker
///   re-verifies against its exact subscription store before notifying
///   consumers.
///
/// # Example
///
/// ```
/// use subsum_core::BrokerSummary;
/// use subsum_types::{stock_schema, Subscription, Event, NumOp, StrOp,
///                    SubscriptionId, BrokerId, LocalSubId};
/// # fn main() -> Result<(), subsum_types::TypeError> {
/// let schema = stock_schema();
/// let sub = Subscription::builder(&schema)
///     .str_op("symbol", StrOp::Eq, "OTE")?
///     .num("price", NumOp::Lt, 8.70)?
///     .num("price", NumOp::Gt, 8.30)?
///     .build()?;
/// let mut summary = BrokerSummary::new(schema.clone());
/// let id = summary.insert(BrokerId(0), LocalSubId(1), &sub);
///
/// let event = Event::builder(&schema)
///     .str("symbol", "OTE")?
///     .num("price", 8.40)?
///     .build();
/// assert_eq!(summary.match_event(&event), vec![id]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerSummary {
    schema: Schema,
    /// Indexed by attribute id; `None` for string attributes.
    arith: Vec<Option<RangeSummary>>,
    /// Indexed by attribute id; `None` for arithmetic attributes.
    strings: Vec<Option<PatternSummary>>,
    /// The intern table behind every row's dense posting list. Its id
    /// list equals [`BrokerSummary::subscription_ids`], so it doubles as
    /// the known-id counter cache. Relative to the byte wire this is
    /// derived state: `SummaryCodec` ships plain `SubscriptionId` lists
    /// and the decoder rebuilds the table (the `lint: derived` tag makes
    /// `cargo xtask check` reject any reference from the wire codec).
    intern: InternTable, // lint: derived
    /// Lazily compiled columnar probe plan over the rows above. Pure
    /// derived state: skipped on the wire, invisible to `PartialEq` and
    /// digests, dropped on every mutation and rebuilt on the next match.
    #[serde(skip)]
    plan: PlanCell, // lint: derived
}

impl BrokerSummary {
    /// Creates an empty summary over `schema`.
    pub fn new(schema: Schema) -> Self {
        let n = schema.len();
        BrokerSummary {
            schema,
            arith: vec![None; n],
            strings: vec![None; n],
            intern: InternTable::default(),
            plan: PlanCell::default(),
        }
    }

    /// The schema this summary is defined over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Returns `true` if no subscription has been summarized.
    pub fn is_empty(&self) -> bool {
        self.arith.iter().flatten().all(RangeSummary::is_empty)
            && self.strings.iter().flatten().all(PatternSummary::is_empty)
    }

    /// Dissolves `sub` into the summary under the id
    /// `(broker, local, attr_mask(sub))` and returns that id.
    ///
    /// Arithmetic conjunctions are intersected into interval sets before
    /// insertion (Fig. 4 merges `price < 8.70 ∧ price > 8.30` into one
    /// sub-range); each string constraint inserts its over-approximating
    /// pattern.
    pub fn insert(
        &mut self,
        broker: subsum_types::BrokerId,
        local: subsum_types::LocalSubId,
        sub: &Subscription,
    ) -> SubscriptionId {
        let id = SubscriptionId::new(broker, local, sub.attr_mask());
        self.insert_with_id(id, sub);
        id
    }

    /// Dissolves `sub` under a pre-assigned id. The id's `c3` mask must
    /// equal `sub.attr_mask()` for the match counters to be meaningful.
    pub fn insert_with_id(&mut self, id: SubscriptionId, sub: &Subscription) {
        let _span = STAGE_INSERT.start();
        debug_assert_eq!(id.mask, sub.attr_mask(), "id mask must match constraints");
        let normalized = sub.normalize();
        // Only ids that will leave a trace in some row are interned: an
        // everywhere-unsatisfiable subscription (empty interval set)
        // leaves no trace, its counter can never reach its mask count,
        // and it must not occupy an intern slot either.
        let touches = normalized.iter().any(|(_, na)| match na {
            NormalizedAttr::Arithmetic(set) => !set.is_empty(),
            NormalizedAttr::String(constraints) => !constraints.is_empty(),
        });
        if !touches {
            return;
        }
        self.plan.invalidate();
        let dense = self.intern_id(id);
        for (attr, na) in normalized.iter() {
            match na {
                NormalizedAttr::Arithmetic(set) => {
                    // An unsatisfiable conjunction (empty set) leaves no
                    // trace: the id's counter can then never reach its
                    // mask count, so the subscription never matches —
                    // exactly the semantics of an unsatisfiable filter.
                    if set.is_empty() {
                        continue;
                    }
                    let slot = self.arith[attr.index()].get_or_insert_with(RangeSummary::new);
                    slot.insert_set(set, dense);
                }
                NormalizedAttr::String(constraints) => {
                    let slot = self.strings[attr.index()].get_or_insert_with(PatternSummary::new);
                    for c in constraints {
                        // `≠` widens to the universal pattern: sound
                        // over-approximation, re-verified at the home
                        // broker.
                        slot.insert(c.over_approximation(), dense);
                    }
                }
            }
        }
    }

    /// Interns `id`, returning its dense id. When a new id lands in the
    /// middle of the dense order (ids usually arrive ascending), every
    /// posting at or above the insertion rank is renumbered up by one —
    /// a monotone shift, so all posting lists stay sorted.
    fn intern_id(&mut self, id: SubscriptionId) -> DenseId {
        match self.intern.position(&id) {
            Ok(pos) => pos as DenseId,
            Err(pos) => {
                if pos < self.intern.len() {
                    CNT_INTERN_RENUMBERS.inc();
                    let rank = pos as DenseId;
                    self.remap_all(move |d| if d >= rank { d + 1 } else { d });
                }
                self.intern.insert_at(pos, id);
                pos as DenseId
            }
        }
    }

    /// Applies a strictly monotone dense-id renumbering to every posting
    /// list in every attribute structure.
    fn remap_all(&mut self, map: impl Fn(DenseId) -> DenseId + Copy) {
        for s in self.arith.iter_mut().flatten() {
            s.remap_ids(map);
        }
        for s in self.strings.iter_mut().flatten() {
            s.remap_ids(map);
        }
    }

    /// Removes a subscription's traces from every attribute structure
    /// and vacates its intern slot (every surviving posting above the
    /// slot shifts down by one — a single linear pass; removal is a
    /// maintenance path, not the hot path).
    ///
    /// SACS rows keep their (possibly generalized) patterns; summaries
    /// only ever become *more* precise again through
    /// [`BrokerSummary::rebuild`].
    pub fn remove(&mut self, id: SubscriptionId) {
        let Ok(pos) = self.intern.position(&id) else {
            return;
        };
        self.plan.invalidate();
        let gone = pos as DenseId;
        for s in self.arith.iter_mut().flatten() {
            s.remove_remap(gone);
        }
        for s in self.strings.iter_mut().flatten() {
            s.remove_remap(gone);
        }
        self.intern.remove_at(pos);
    }

    /// Reconstructs a summary from an exact subscription store, shedding
    /// generalizations left behind by removals (maintenance, §3).
    pub fn rebuild<'a>(
        schema: Schema,
        subs: impl IntoIterator<Item = (SubscriptionId, &'a Subscription)>,
    ) -> Self {
        let mut summary = BrokerSummary::new(schema);
        for (id, sub) in subs {
            summary.insert_with_id(id, sub);
        }
        summary
    }

    /// Merges another broker's summary into this one (multi-broker
    /// summaries, §4.1): per-attribute structures merge by union.
    ///
    /// # Panics
    ///
    /// Panics if the schemata differ; brokers of one system share the
    /// schema by assumption (§3).
    pub fn merge(&mut self, other: &BrokerSummary) {
        let _span = STAGE_MERGE.start();
        assert!(
            self.schema.is_compatible(&other.schema),
            "cannot merge summaries over different schemata"
        );
        self.plan.invalidate();
        // Union the two dense id spaces once, up front, producing
        // monotone translation arrays — both sides' postings then remap
        // in linear passes instead of re-interning id by id.
        CNT_INTERN_REBUILDS.inc();
        let (union, trans_self, trans_other) = self.intern.union_translate(&other.intern);
        let identity = trans_self
            .last()
            .map_or(true, |&d| d as usize == trans_self.len() - 1);
        if !identity {
            self.remap_all(|d| trans_self[d as usize]);
        }
        self.intern = union;
        let mut buf = IdList::new();
        for (idx, slot) in other.arith.iter().enumerate() {
            if let Some(theirs) = slot {
                let mine = self.arith[idx].get_or_insert_with(RangeSummary::new);
                for row in theirs.ranges() {
                    translate_into(&trans_other, &row.ids, &mut buf);
                    mine.insert_interval_ids(row.interval, &buf);
                }
                for (v, ids) in theirs.points() {
                    translate_into(&trans_other, ids, &mut buf);
                    mine.insert_point_ids(v, &buf);
                }
            }
        }
        for (idx, slot) in other.strings.iter().enumerate() {
            if let Some(theirs) = slot {
                let mine = self.strings[idx].get_or_insert_with(PatternSummary::new);
                for (pattern, ids) in theirs.rows() {
                    translate_into(&trans_other, ids, &mut buf);
                    mine.insert_ids(pattern, &buf);
                }
            }
        }
    }

    /// Installs the rows of a decoded summary in one pass (decoder
    /// internals). The wire carries plain `SubscriptionId` lists — the
    /// dense representation never travels — so the intern table is
    /// rebuilt wholesale here: union all row ids, then translate each
    /// row's sorted id list to dense postings. Rebuilding in two passes
    /// keeps decode linear; interning row by row would renumber postings
    /// quadratically on adversarial id orders.
    pub(crate) fn install_decoded_rows(
        &mut self,
        arith_rows: &[(subsum_types::AttrId, subsum_types::Interval, SubIdList)],
        point_rows: &[(subsum_types::AttrId, subsum_types::Num, SubIdList)],
        string_rows: &[(subsum_types::AttrId, subsum_types::Pattern, SubIdList)],
    ) {
        self.plan.invalidate();
        CNT_INTERN_REBUILDS.inc();
        // Pass 1: the union of the ids of every row that will actually
        // install (skipping the rows the old per-row inserters skipped,
        // so no table slot ends up without a posting).
        let mut all = SubIdList::new();
        for (_, iv, ids) in arith_rows {
            if !iv.is_empty() && !ids.is_empty() {
                all.extend_from_slice(ids);
            }
        }
        for (_, _, ids) in point_rows {
            all.extend_from_slice(ids);
        }
        for (_, _, ids) in string_rows {
            all.extend_from_slice(ids);
        }
        all.sort_unstable();
        all.dedup();
        self.intern = InternTable::from_ids(all);
        // Pass 2: install each row with its ids translated to dense
        // postings (a sorted id list maps to a sorted dense list).
        let mut buf = IdList::new();
        for (attr, iv, ids) in arith_rows {
            if iv.is_empty() || ids.is_empty() {
                continue;
            }
            buf.clear();
            for id in ids {
                if let Ok(pos) = self.intern.position(id) {
                    buf.push(pos as DenseId);
                }
            }
            self.arith[attr.index()]
                .get_or_insert_with(RangeSummary::new)
                .insert_interval_ids(*iv, &buf);
        }
        for (attr, v, ids) in point_rows {
            if ids.is_empty() {
                continue;
            }
            buf.clear();
            for id in ids {
                if let Ok(pos) = self.intern.position(id) {
                    buf.push(pos as DenseId);
                }
            }
            self.arith[attr.index()]
                .get_or_insert_with(RangeSummary::new)
                .insert_point_ids(*v, &buf);
        }
        for (attr, pattern, ids) in string_rows {
            if ids.is_empty() {
                continue;
            }
            buf.clear();
            for id in ids {
                if let Ok(pos) = self.intern.position(id) {
                    buf.push(pos as DenseId);
                }
            }
            self.strings[attr.index()]
                .get_or_insert_with(PatternSummary::new)
                .insert_ids(pattern.clone(), &buf);
        }
    }

    /// Resolves a dense posting list to full subscription ids, replacing
    /// the contents of `out` (encoder support — the wire codec stays
    /// representation-free and never sees dense ids). Dense order equals
    /// id order, so the output is sorted.
    pub(crate) fn resolve_postings(&self, dense: &[DenseId], out: &mut SubIdList) {
        out.clear();
        for &d in dense {
            out.push(self.intern.resolve(d));
        }
    }

    /// The intern table (shard derivation: the partition is split off
    /// the flat rows in dense-id space).
    pub(crate) fn intern_table(&self) -> &InternTable {
        &self.intern
    }

    /// All AACS slots in attribute order (shard derivation).
    pub(crate) fn arith_slots(&self) -> &[Option<RangeSummary>] {
        &self.arith
    }

    /// All SACS slots in attribute order (shard derivation).
    pub(crate) fn string_slots(&self) -> &[Option<PatternSummary>] {
        &self.strings
    }

    /// The AACS for an attribute, if any constraint was recorded.
    pub fn arith_summary(&self, attr: subsum_types::AttrId) -> Option<&RangeSummary> {
        self.arith.get(attr.index())?.as_ref()
    }

    /// The SACS for an attribute, if any constraint was recorded.
    pub fn string_summary(&self, attr: subsum_types::AttrId) -> Option<&PatternSummary> {
        self.strings.get(attr.index())?.as_ref()
    }

    /// Matches an event against the summary — Algorithm 1 of §3.3.
    ///
    /// Returns the ids of all subscriptions whose every constrained
    /// attribute is present in the event and satisfied by the summary
    /// structures (a superset of the exact matches; no false negatives).
    pub fn match_event(&self, event: &Event) -> Vec<SubscriptionId> {
        self.match_event_with_stats(event).matched
    }

    /// As [`BrokerSummary::match_event`], also reporting work counters
    /// for the computational-cost experiments (§5.2.4).
    ///
    /// Thin wrapper over [`BrokerSummary::match_event_into`] with a
    /// one-shot scratch; hot paths should hold a [`MatchScratch`] and
    /// call `match_event_into` directly.
    pub fn match_event_with_stats(&self, event: &Event) -> MatchOutcome {
        let mut scratch = MatchScratch::new();
        self.match_event_into(event, &mut scratch);
        scratch.outcome
    }

    /// Matches an event against the summary using caller-owned scratch
    /// buffers — the allocation-free hot path of Algorithm 1, served by
    /// the compiled columnar match plan.
    ///
    /// The summary's rows are compiled (lazily, cached until the next
    /// mutation) into per-attribute structure-of-arrays banks over one
    /// flat dense-id postings arena. A probe walks sorted key arrays
    /// with a branchless lower-bound search and streams contiguous
    /// posting slices through a packed epoch-counter kernel: one random
    /// access per posting loads `(epoch, count)` in a single word, and
    /// the match bit is set the moment a counter reaches the summary's
    /// precomputed `required` count (its `c3` mask popcount) — no
    /// candidate list, no second pass. Matched dense ids are extracted
    /// from the bitmap in ascending dense order — which *is* ascending
    /// `SubscriptionId` order, by the intern-table invariant — so the
    /// output is sorted without sorting. All working memory lives in
    /// `scratch`, pre-sized to the summary population on first use;
    /// once the plan is compiled the matcher performs **zero heap
    /// allocations**.
    ///
    /// The returned reference borrows `scratch`; the outcome stays
    /// readable until the next `match_event_into` call with the same
    /// scratch.
    pub fn match_event_into<'s>(
        &self,
        event: &Event,
        scratch: &'s mut MatchScratch,
    ) -> &'s MatchOutcome {
        let _span = STAGE_MATCH.start();
        let n = self.intern.len();
        let plan = self
            .plan
            .get_or_compile(|| MatchPlan::compile(&self.arith, &self.strings, 0, n as DenseId));
        if scratch.used {
            CNT_SCRATCH_REUSE.inc();
        }
        scratch.used = true;
        scratch.prepare(n);
        let MatchScratch {
            per_attr,
            seen,
            state,
            matched_words,
            token,
            outcome,
            ..
        } = scratch;
        outcome.matched.clear();
        let mut stats = MatchStats::default();
        let (lo, hi) = plan.probe_into(
            event,
            &self.strings,
            self.intern.required_slice(),
            per_attr,
            state,
            seen,
            matched_words,
            token,
            &mut stats,
        );
        if lo <= hi {
            // Indexed on purpose: each word is read *and* cleared in
            // place, and `w` feeds the dense-id reconstruction below.
            #[allow(clippy::needless_range_loop)]
            for w in lo..=hi {
                let mut bits = matched_words[w];
                matched_words[w] = 0;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    outcome
                        .matched
                        .push(self.intern.resolve((w * 64 + b) as DenseId));
                }
            }
        }
        outcome.stats = stats;
        outcome
    }

    /// The pre-plan dense counter kernel, retained as a differential
    /// reference (proptests pin `plan == dense == scan`) and for the
    /// benchmark's kernel-vs-kernel comparison.
    ///
    /// One `O(P)` pass over the `P` collected dense postings: per
    /// posting the kernel bumps an epoch-stamped `hits` counter (lazily
    /// invalidated by the event epoch, so nothing is cleared between
    /// events); a second per-attribute stamp deduplicates subscriptions
    /// holding several satisfied constraints on one attribute. Unlike
    /// the compiled-plan path this copies each satisfied row's `IdList`
    /// into a per-attribute buffer and revisits every touched id in a
    /// second pass.
    pub fn match_event_dense_into<'s>(
        &self,
        event: &Event,
        scratch: &'s mut MatchScratch,
    ) -> &'s MatchOutcome {
        let _span = STAGE_MATCH.start();
        if scratch.used {
            CNT_SCRATCH_REUSE.inc();
        }
        scratch.used = true;
        scratch.prepare(self.intern.len());
        let MatchScratch {
            per_attr,
            hits,
            stamp,
            seen,
            touched,
            matched_words,
            token,
            outcome,
            ..
        } = scratch;
        outcome.matched.clear();
        touched.clear();
        let mut stats = MatchStats::default();
        // Epoch stamping: one fresh token for the event, then one per
        // attribute. Stale array entries never compare equal to a fresh
        // token, so no clearing pass is needed.
        let epoch = *token + 1;
        let mut attr_token = epoch;
        let mut dense_postings = 0u64;

        // Step 1: per event attribute, stream the satisfied posting
        // lists through the counters.
        for (attr, value) in event.iter() {
            per_attr.clear();
            // Attribute kinds partition into arithmetic and string, so a
            // plain branch covers them without a panicking fallback arm.
            if self.schema.kind(attr).is_arithmetic() {
                if let Some(s) = self.arith_summary(attr) {
                    if let Some(v) = value.as_num() {
                        let cost = s.query_into(v, per_attr);
                        stats.rows_scanned += cost.rows_touched;
                        stats.rows_pruned += cost.rows_pruned;
                    }
                }
            } else if let Some(s) = self.string_summary(attr) {
                if let Some(v) = value.as_str() {
                    let cost = s.query_into(v, per_attr);
                    stats.rows_scanned += cost.rows_touched;
                    stats.rows_pruned += cost.rows_pruned;
                }
            }
            attr_token += 1;
            dense_postings += per_attr.len() as u64;
            for &d in per_attr.iter() {
                let di = d as usize;
                // Count each subscription once per *attribute* even when
                // several of its constraints on it are satisfied.
                if seen[di] == attr_token {
                    continue;
                }
                seen[di] = attr_token;
                stats.ids_collected += 1;
                if stamp[di] == epoch {
                    hits[di] += 1;
                } else {
                    stamp[di] = epoch;
                    hits[di] = 1;
                    touched.push(d);
                }
            }
        }
        *token = attr_token;
        CNT_DENSE_HITS.add(dense_postings);

        // Step 2: a subscription matches when its counter equals the
        // number of attributes in its c3 mask (`required`). Mark matches
        // in the bitmap, then extract set bits word by word: ascending
        // dense order is ascending `SubscriptionId` order, so the output
        // comes out sorted with no sort.
        stats.candidates = touched.len();
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for &d in touched.iter() {
            let di = d as usize;
            if hits[di] == self.intern.required(di) {
                let w = di / 64;
                matched_words[w] |= 1u64 << (di % 64);
                lo = lo.min(w);
                hi = hi.max(w);
            }
        }
        if lo <= hi {
            // Indexed on purpose: each word is read *and* cleared in
            // place, and `w` feeds the dense-id reconstruction below.
            #[allow(clippy::needless_range_loop)]
            for w in lo..=hi {
                let mut bits = matched_words[w];
                matched_words[w] = 0;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    outcome
                        .matched
                        .push(self.intern.resolve((w * 64 + b) as DenseId));
                }
            }
        }
        outcome.stats = stats;
        outcome
    }

    /// Reference implementation of Algorithm 1 as flat scans over every
    /// summary row, bypassing the SACS pattern index. Retained for
    /// differential testing and the benchmark's before/after comparison;
    /// `matched` equals [`BrokerSummary::match_event`] exactly (same
    /// sorted order).
    pub fn match_event_scan(&self, event: &Event) -> MatchOutcome {
        let mut collected = SubIdList::new();
        let mut per_attr = SubIdList::new();
        let mut dense = IdList::new();
        let mut stats = MatchStats::default();
        for (attr, value) in event.iter() {
            per_attr.clear();
            dense.clear();
            if self.schema.kind(attr).is_arithmetic() {
                if let Some(s) = self.arith_summary(attr) {
                    if let Some(v) = value.as_num() {
                        let cost = s.query_into(v, &mut dense);
                        stats.rows_scanned += cost.rows_touched;
                        stats.rows_pruned += cost.rows_pruned;
                    }
                }
            } else if let Some(s) = self.string_summary(attr) {
                if let Some(v) = value.as_str() {
                    s.query_scan_into(v, &mut dense);
                    stats.rows_scanned += s.row_count();
                }
            }
            // The reference path works on plain subscription ids: resolve
            // each dense posting immediately and keep the original
            // sort-and-count-runs realization of Algorithm 1.
            for &d in &dense {
                per_attr.push(self.intern.resolve(d));
            }
            per_attr.sort_unstable();
            per_attr.dedup();
            stats.ids_collected += per_attr.len();
            collected.extend_from_slice(&per_attr);
        }
        collected.sort_unstable();
        let mut matched: Vec<SubscriptionId> = Vec::new();
        let mut i = 0;
        while i < collected.len() {
            let id = collected[i];
            let mut j = i + 1;
            while j < collected.len() && collected[j] == id {
                j += 1;
            }
            stats.candidates += 1;
            if (j - i) as u32 == id.mask.count() {
                matched.push(id);
            }
            i = j;
        }
        MatchOutcome { matched, stats }
    }

    /// The distinct subscription ids present anywhere in the summary,
    /// sorted — computed from the rows (one flat pass over the dense
    /// posting lists), independently of the intern table, so `validate`
    /// can cross-check the two.
    pub fn subscription_ids(&self) -> Vec<SubscriptionId> {
        let mut dense: Vec<DenseId> = self
            .arith
            .iter()
            .flatten()
            .flat_map(|s| s.all_ids())
            .chain(self.strings.iter().flatten().flat_map(|s| s.all_ids()))
            .collect();
        dense.sort_unstable();
        dense.dedup();
        dense.into_iter().map(|d| self.intern.resolve(d)).collect()
    }

    /// The number of distinct subscriptions summarized — `O(1)`, served
    /// from the intern table.
    pub fn subscription_count(&self) -> usize {
        self.intern.len()
    }

    /// Checks the deep structural invariants of the whole summary.
    /// Compiled only for tests and debug builds; the property tests call
    /// it after every insertion, merge, removal and wire round-trip.
    ///
    /// Invariants:
    ///
    /// * the per-attribute slot vectors span the schema, and a populated
    ///   slot sits on an attribute of the matching kind;
    /// * every per-attribute structure passes its own
    ///   [`RangeSummary::validate`] / [`PatternSummary::validate`];
    /// * intern-table coherence: the interned ids are strictly sorted,
    ///   `required[d]` equals each id's mask popcount, every dense
    ///   posting is in table range, and the referenced dense ids are
    ///   exactly `0..len` (contiguous — no zombie slots, no danglers).
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    #[cfg(any(test, debug_assertions))]
    pub fn validate(&self) {
        assert_eq!(
            self.arith.len(),
            self.schema.len(),
            "AACS slots span the schema"
        );
        assert_eq!(
            self.strings.len(),
            self.schema.len(),
            "SACS slots span the schema"
        );
        for (idx, slot) in self.arith.iter().enumerate() {
            if let Some(s) = slot {
                assert!(
                    self.schema
                        .kind(subsum_types::AttrId(idx as u16))
                        .is_arithmetic(),
                    "AACS slot on non-arithmetic attribute {idx}"
                );
                s.validate();
            }
        }
        for (idx, slot) in self.strings.iter().enumerate() {
            if let Some(s) = slot {
                assert!(
                    !self
                        .schema
                        .kind(subsum_types::AttrId(idx as u16))
                        .is_arithmetic(),
                    "SACS slot on arithmetic attribute {idx}"
                );
                s.validate();
            }
        }
        crate::idlist::validate_idlist(&self.intern.ids);
        assert_eq!(
            self.intern.ids.len(),
            self.intern.required.len(),
            "required[] length out of sync with the intern table"
        );
        for (d, id) in self.intern.ids.iter().enumerate() {
            assert!(
                self.intern.required[d] == id.mask.count(),
                "required[] inconsistent with the id mask at dense id {d}"
            );
        }
        let mut dense: Vec<DenseId> = self
            .arith
            .iter()
            .flatten()
            .flat_map(|s| s.all_ids())
            .chain(self.strings.iter().flatten().flat_map(|s| s.all_ids()))
            .collect();
        dense.sort_unstable();
        dense.dedup();
        for &d in &dense {
            assert!(
                (d as usize) < self.intern.ids.len(),
                "dense id {d} out of intern-table range"
            );
        }
        assert!(
            dense.len() == self.intern.ids.len()
                && dense.iter().enumerate().all(|(i, &d)| i == d as usize),
            "intern table out of sync with the summary rows"
        );
        // Plan/summary coherence: a cached compiled plan must equal a
        // fresh compile of the current rows. (Deterministic: both
        // compiles iterate the same literal-map instances, so the arena
        // layout comes out identical.)
        if let Some(cached) = self.plan.cached() {
            let fresh =
                MatchPlan::compile(&self.arith, &self.strings, 0, self.intern.len() as DenseId);
            assert!(
                *cached == fresh,
                "cached match plan out of sync with the summary rows"
            );
        }
    }
}

/// Translates a sorted dense posting list through a monotone translation
/// array into `buf` (summary merging). The result is sorted because the
/// translation is strictly increasing.
fn translate_into(trans: &[DenseId], ids: &[DenseId], buf: &mut IdList) {
    buf.clear();
    for &d in ids {
        buf.push(trans[d as usize]);
    }
}

/// Reusable working memory for [`BrokerSummary::match_event_into`].
///
/// Holds the epoch-counter kernel's per-dense-id arrays (`hits` counters
/// with their validity stamps, the per-attribute dedup stamps, the
/// matched-id bitmap) plus the [`MatchOutcome`] it fills. The arrays are
/// indexed by dense id and sized to the largest summary population this
/// scratch has served; stamping makes stale entries self-invalidating,
/// so nothing is cleared between events and reusing one scratch across
/// events keeps the steady-state match loop free of heap allocations. A
/// scratch is tied to no particular summary and may be reused across
/// brokers.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Per-attribute query buffer (dense postings, possibly duplicated
    /// when one subscription holds several constraints on an attribute).
    per_attr: IdList,
    /// Per-dense-id satisfied-attribute counters, valid for the current
    /// event when `stamp` carries the event epoch.
    hits: Vec<u32>,
    /// Event-epoch stamps validating `hits`.
    stamp: Vec<u64>,
    /// Attribute-token stamps deduplicating postings within one
    /// attribute (replaces the old per-attribute sort + dedup).
    seen: Vec<u64>,
    /// Packed `(epoch << 16) | count` words of the compiled-plan kernel:
    /// one load and one store per posting replace the separate
    /// `stamp`/`hits` pair of the dense reference kernel.
    state: Vec<u64>,
    /// Distinct dense ids hit by the current event (the candidates).
    touched: Vec<DenseId>,
    /// Bitmap over dense ids marking the matched ones; zeroed again
    /// during extraction.
    matched_words: Vec<u64>,
    /// Monotone token source for event epochs and attribute tokens.
    token: u64,
    /// The outcome of the most recent match.
    outcome: MatchOutcome,
    /// Whether this scratch has served a match before (drives the
    /// `match.scratch_reuse` telemetry counter).
    used: bool,
}

impl MatchScratch {
    /// Creates an empty scratch. Buffers grow on first use and are then
    /// retained.
    pub fn new() -> Self {
        MatchScratch::default()
    }

    /// The outcome of the most recent [`BrokerSummary::match_event_into`]
    /// served by this scratch.
    pub fn outcome(&self) -> &MatchOutcome {
        &self.outcome
    }

    /// Sizes every per-dense-id array to population `n` in one shot —
    /// the matcher's only allocation path. The arrays grow together, so
    /// a scratch that has served a summary of `n` ids never allocates
    /// again for populations `<= n`; each growth event (first use, or a
    /// larger summary) bumps `match.scratch_grows`, which steady-state
    /// workloads must keep at zero.
    fn prepare(&mut self, n: usize) {
        if self.hits.len() < n {
            CNT_SCRATCH_GROWS.inc();
            self.hits.resize(n, 0);
            self.stamp.resize(n, 0);
            self.seen.resize(n, 0);
            self.state.resize(n, 0);
            self.matched_words.resize(n.div_ceil(64), 0);
        }
    }
}

impl std::fmt::Display for BrokerSummary {
    /// Renders the summary in the tabular style of the paper's Figs. 4–5:
    /// one AACS block per arithmetic attribute (ranges, then equality
    /// values) and one SACS block per string attribute, each row with its
    /// subscription-id list.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut empty = true;
        for (attr, spec) in self.schema.iter() {
            if spec.kind.is_arithmetic() {
                if let Some(a) = self.arith_summary(attr) {
                    if a.is_empty() {
                        continue;
                    }
                    empty = false;
                    writeln!(f, "AACS for attribute {}", spec.name)?;
                    for row in a.ranges() {
                        write!(f, "  {} ->", row.interval)?;
                        for &d in &row.ids {
                            write!(f, " {}", self.intern.resolve(d))?;
                        }
                        writeln!(f)?;
                    }
                    for (v, ids) in a.points() {
                        write!(f, "  = {v} ->")?;
                        for &d in ids {
                            write!(f, " {}", self.intern.resolve(d))?;
                        }
                        writeln!(f)?;
                    }
                }
            } else if let Some(s) = self.string_summary(attr) {
                if s.is_empty() {
                    continue;
                }
                empty = false;
                writeln!(f, "SACS for attribute {}", spec.name)?;
                for (pattern, ids) in s.rows() {
                    write!(f, "  {pattern} ->")?;
                    for &d in ids {
                        write!(f, " {}", self.intern.resolve(d))?;
                    }
                    writeln!(f)?;
                }
            }
        }
        if empty {
            writeln!(f, "(empty summary)")?;
        }
        Ok(())
    }
}

/// The result of matching one event against a summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchOutcome {
    /// Matched subscription ids, sorted.
    pub matched: Vec<SubscriptionId>,
    /// Work counters for the §5.2.4 computational analysis.
    pub stats: MatchStats,
}

/// Work counters accumulated during one [`BrokerSummary::match_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchStats {
    /// Summary rows actually probed across all event attributes (the T₁
    /// term): binary-search comparisons plus the equality probe for
    /// AACS, literal probe plus index-selected wildcard rows for SACS.
    pub rows_scanned: usize,
    /// SACS wildcard rows the pattern index skipped without testing —
    /// the scan work the pre-index matcher would have performed.
    pub rows_pruned: usize,
    /// Total ids collected from satisfied rows (the P of the T₂ term).
    pub ids_collected: usize,
    /// Distinct candidate subscriptions whose counters were checked.
    pub candidates: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{stock_schema, BrokerId, LocalSubId, NumOp, StrOp};

    fn schema() -> Schema {
        stock_schema()
    }

    fn sub1(schema: &Schema) -> Subscription {
        Subscription::builder(schema)
            .str_pattern("exchange", "N*SE")
            .unwrap()
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .num("price", NumOp::Lt, 8.70)
            .unwrap()
            .num("price", NumOp::Gt, 8.30)
            .unwrap()
            .build()
            .unwrap()
    }

    fn sub2(schema: &Schema) -> Subscription {
        Subscription::builder(schema)
            .str_op("symbol", StrOp::Prefix, "OT")
            .unwrap()
            .num("price", NumOp::Eq, 8.20)
            .unwrap()
            .num("volume", NumOp::Gt, 130000.0)
            .unwrap()
            .num("low", NumOp::Lt, 8.05)
            .unwrap()
            .build()
            .unwrap()
    }

    fn fig2_event(schema: &Schema) -> Event {
        Event::builder(schema)
            .str("exchange", "NYSE")
            .unwrap()
            .str("symbol", "OTE")
            .unwrap()
            .date("when", 1057055125)
            .unwrap()
            .num("price", 8.40)
            .unwrap()
            .int("volume", 132700)
            .unwrap()
            .num("high", 8.80)
            .unwrap()
            .num("low", 8.22)
            .unwrap()
            .build()
    }

    #[test]
    fn paper_example1_matching() {
        // §3.3 Example 1: S1 matches the Fig. 2 event; S2's counter (2)
        // falls short of its four attributes.
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        let id1 = summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        let id2 = summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        let outcome = summary.match_event_with_stats(&fig2_event(&schema));
        assert_eq!(outcome.matched, vec![id1]);
        assert!(!outcome.matched.contains(&id2));
        // S1 and S2 were both candidates (both satisfied some attribute).
        assert_eq!(outcome.stats.candidates, 2);
    }

    #[test]
    fn counter_semantics_match_paper() {
        // From the worked example: S1's counter reaches 3 (exchange,
        // symbol, price); S2's reaches 2 (symbol, volume).
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        let e = fig2_event(&schema);
        // Check indirectly through per-attribute queries.
        let symbol = schema.attr_id("symbol").unwrap();
        let ids = summary.string_summary(symbol).unwrap().query("OTE");
        assert_eq!(ids.len(), 2);
        let price = schema.attr_id("price").unwrap();
        let ids = summary
            .arith_summary(price)
            .unwrap()
            .query(subsum_types::Num::new(8.40).unwrap());
        assert_eq!(ids.len(), 1);
        let volume = schema.attr_id("volume").unwrap();
        let ids = summary
            .arith_summary(volume)
            .unwrap()
            .query(subsum_types::Num::from(132700i64));
        assert_eq!(ids.len(), 1);
        // End-to-end result is just S1.
        assert_eq!(summary.match_event(&e).len(), 1);
    }

    #[test]
    fn no_match_when_attribute_missing_from_event() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        // Event without `exchange`: counter 2 < 3 attributes.
        let e = Event::builder(&schema)
            .str("symbol", "OTE")
            .unwrap()
            .num("price", 8.40)
            .unwrap()
            .build();
        assert!(summary.match_event(&e).is_empty());
    }

    #[test]
    fn multiple_constraints_same_attribute_count_once() {
        let schema = schema();
        let sub = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Prefix, "OT")
            .unwrap()
            .str_op("symbol", StrOp::Suffix, "E")
            .unwrap()
            .build()
            .unwrap();
        let mut summary = BrokerSummary::new(schema.clone());
        let id = summary.insert(BrokerId(0), LocalSubId(1), &sub);
        assert_eq!(id.mask.count(), 1);
        let e = Event::builder(&schema)
            .str("symbol", "OTE")
            .unwrap()
            .build();
        // Both constraints satisfied; the id must be reported exactly once.
        assert_eq!(summary.match_event(&e), vec![id]);
        // Union semantics (over-approximation): satisfying only one
        // pattern still reports the candidate...
        let e2 = Event::builder(&schema)
            .str("symbol", "OTX")
            .unwrap()
            .build();
        assert_eq!(summary.match_event(&e2), vec![id]);
        // ...and exact verification rejects it.
        assert!(!sub.matches(&e2));
    }

    #[test]
    fn remove_subscription() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        let id1 = summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        let id2 = summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        assert_eq!(summary.subscription_count(), 2);
        summary.remove(id1);
        assert_eq!(summary.subscription_ids(), vec![id2]);
        let e = fig2_event(&schema);
        assert!(summary.match_event(&e).is_empty());
        summary.remove(id2);
        assert!(summary.is_empty());
    }

    #[test]
    fn rebuild_equals_fresh_insertions() {
        let schema = schema();
        let s1 = sub1(&schema);
        let s2 = sub2(&schema);
        let mut summary = BrokerSummary::new(schema.clone());
        let id1 = summary.insert(BrokerId(1), LocalSubId(1), &s1);
        let id2 = summary.insert(BrokerId(1), LocalSubId(2), &s2);
        let rebuilt = BrokerSummary::rebuild(schema.clone(), [(id1, &s1), (id2, &s2)]);
        assert_eq!(summary, rebuilt);
    }

    #[test]
    fn merge_multi_broker() {
        let schema = schema();
        let mut a = BrokerSummary::new(schema.clone());
        let id1 = a.insert(BrokerId(1), LocalSubId(1), &sub1(&schema));
        let mut b = BrokerSummary::new(schema.clone());
        let id2 = b.insert(BrokerId(2), LocalSubId(1), &sub2(&schema));
        a.merge(&b);
        assert_eq!(a.subscription_ids(), {
            let mut v = vec![id1, id2];
            v.sort();
            v
        });
        let e = fig2_event(&schema);
        assert_eq!(a.match_event(&e), vec![id1]);
    }

    #[test]
    #[should_panic(expected = "different schemata")]
    fn merge_incompatible_schema_panics() {
        let a = BrokerSummary::new(schema());
        let other_schema = Schema::builder()
            .attr("x", subsum_types::AttrKind::Float)
            .unwrap()
            .build();
        let mut b = BrokerSummary::new(other_schema);
        b.merge(&a);
    }

    #[test]
    fn ne_constraint_over_approximates() {
        let schema = schema();
        let sub = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Ne, "IBM")
            .unwrap()
            .build()
            .unwrap();
        let mut summary = BrokerSummary::new(schema.clone());
        let id = summary.insert(BrokerId(0), LocalSubId(1), &sub);
        let matching = Event::builder(&schema)
            .str("symbol", "OTE")
            .unwrap()
            .build();
        let excluded = Event::builder(&schema)
            .str("symbol", "IBM")
            .unwrap()
            .build();
        // Summary reports both (universal pattern)...
        assert_eq!(summary.match_event(&matching), vec![id]);
        assert_eq!(summary.match_event(&excluded), vec![id]);
        // ...exact matching separates them (tier-2 verification).
        assert!(sub.matches(&matching));
        assert!(!sub.matches(&excluded));
    }

    #[test]
    fn display_renders_paper_style_tables() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        let rendered = format!("{summary}");
        assert!(rendered.contains("AACS for attribute price"));
        assert!(rendered.contains("SACS for attribute symbol"));
        assert!(rendered.contains("(8.3, 8.7)"));
        assert!(rendered.contains("= 8.2"));
        assert!(rendered.contains("OT*"));
        assert!(rendered.contains("B0/s1"));
        let empty = BrokerSummary::new(schema);
        assert_eq!(format!("{empty}"), "(empty summary)\n");
    }

    #[test]
    fn match_is_superset_of_exact_never_misses() {
        let schema = schema();
        let subs = [sub1(&schema), sub2(&schema)];
        let mut summary = BrokerSummary::new(schema.clone());
        let ids: Vec<_> = subs
            .iter()
            .enumerate()
            .map(|(i, s)| summary.insert(BrokerId(0), LocalSubId(i as u32), s))
            .collect();
        let events = [
            fig2_event(&schema),
            Event::builder(&schema)
                .str("symbol", "OTE")
                .unwrap()
                .num("price", 8.20)
                .unwrap()
                .int("volume", 140000)
                .unwrap()
                .num("low", 8.00)
                .unwrap()
                .build(),
        ];
        for e in &events {
            let matched = summary.match_event(e);
            for (sub, id) in subs.iter().zip(&ids) {
                if sub.matches(e) {
                    assert!(matched.contains(id), "false negative for {id}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_reproduces_one_shot_outcome() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        let e = fig2_event(&schema);
        let one_shot = summary.match_event_with_stats(&e);
        let mut scratch = MatchScratch::new();
        for _ in 0..3 {
            let got = summary.match_event_into(&e, &mut scratch);
            assert_eq!(got, &one_shot);
        }
        assert_eq!(scratch.outcome(), &one_shot);
    }

    #[test]
    fn scan_reference_agrees_with_indexed_matcher() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        for e in [
            fig2_event(&schema),
            Event::builder(&schema)
                .str("symbol", "OTX")
                .unwrap()
                .build(),
            Event::builder(&schema).build(),
        ] {
            assert_eq!(
                summary.match_event(&e),
                summary.match_event_scan(&e).matched
            );
        }
    }

    #[test]
    fn known_ids_track_subscription_ids() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        let id1 = summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        let id2 = summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        assert_eq!(summary.subscription_count(), 2);
        assert_eq!(summary.subscription_ids(), summary.intern.ids);
        // Unsatisfiable arithmetic conjunctions leave no trace and are
        // not counted.
        let unsat = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 1.0)
            .unwrap()
            .num("price", NumOp::Gt, 2.0)
            .unwrap()
            .build()
            .unwrap();
        summary.insert(BrokerId(0), LocalSubId(3), &unsat);
        assert_eq!(summary.subscription_count(), 2);
        assert_eq!(summary.subscription_ids(), summary.intern.ids);
        summary.remove(id1);
        assert_eq!(summary.subscription_count(), 1);
        assert_eq!(summary.subscription_ids(), vec![id2]);
        assert_eq!(summary.subscription_ids(), summary.intern.ids);
    }

    #[test]
    fn validate_accepts_every_mutation_path() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.validate();
        let id1 = summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.validate();
        let mut other = BrokerSummary::new(schema.clone());
        other.insert(BrokerId(1), LocalSubId(2), &sub2(&schema));
        summary.merge(&other);
        summary.validate();
        summary.remove(id1);
        summary.validate();
    }

    #[test]
    #[should_panic(expected = "intern table out of sync with the summary rows")]
    fn validate_rejects_stale_intern_table() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        // Corrupt the intern table behind the API's back: a slot no row
        // references breaks the contiguity invariant.
        let bogus =
            SubscriptionId::new(BrokerId(9), LocalSubId(9), subsum_types::AttrMask::empty());
        summary.intern.required.push(bogus.mask.count());
        summary.intern.ids.push(bogus);
        summary.validate();
    }

    #[test]
    #[should_panic(expected = "required[] length out of sync")]
    fn validate_rejects_required_length_mismatch() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.intern.required.push(7);
        summary.validate();
    }

    #[test]
    #[should_panic(expected = "required[] inconsistent with the id mask")]
    fn validate_rejects_corrupt_required_counts() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.intern.required[0] += 1;
        summary.validate();
    }

    #[test]
    #[should_panic(expected = "out of intern-table range")]
    fn validate_rejects_dangling_dense_postings() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        // Shrink the table out from under the rows.
        summary.intern.ids.pop();
        summary.intern.required.pop();
        summary.validate();
    }

    #[test]
    #[should_panic(expected = "cached match plan out of sync")]
    fn validate_rejects_stale_cached_plan_arith() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        // Compile and cache the plan, then swap two populated AACS slots
        // behind the API's back: both attributes are arithmetic, so
        // every row-level validate check still passes — only the
        // plan-coherence cross-check can catch the stale cache.
        summary.match_event(&fig2_event(&schema));
        let price = schema.attr_id("price").unwrap().index();
        let volume = schema.attr_id("volume").unwrap().index();
        summary.arith.swap(price, volume);
        summary.validate();
    }

    #[test]
    #[should_panic(expected = "cached match plan out of sync")]
    fn validate_rejects_stale_cached_plan_strings() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        summary.match_event(&fig2_event(&schema));
        let exchange = schema.attr_id("exchange").unwrap().index();
        let symbol = schema.attr_id("symbol").unwrap().index();
        summary.strings.swap(exchange, symbol);
        summary.validate();
    }

    #[test]
    fn dense_reference_kernel_agrees_with_plan() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        let e = fig2_event(&schema);
        let mut plan_scratch = MatchScratch::new();
        let mut dense_scratch = MatchScratch::new();
        let plan = summary.match_event_into(&e, &mut plan_scratch).clone();
        let dense = summary
            .match_event_dense_into(&e, &mut dense_scratch)
            .clone();
        assert_eq!(plan.matched, dense.matched);
        assert_eq!(plan.stats.candidates, dense.stats.candidates);
        assert_eq!(plan.stats.rows_scanned, dense.stats.rows_scanned);
        assert_eq!(plan.stats.rows_pruned, dense.stats.rows_pruned);
        assert_eq!(plan.stats.ids_collected, dense.stats.ids_collected);
    }

    #[test]
    fn out_of_order_inserts_renumber_and_still_match() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        // Descending local ids force the renumber path in `intern_id`:
        // each insert lands at rank 0 and shifts the existing postings.
        for k in (1..=5u32).rev() {
            let sub = Subscription::builder(&schema)
                .str_op("symbol", StrOp::Eq, "OTX")
                .unwrap()
                .build()
                .unwrap();
            summary.insert(BrokerId(0), LocalSubId(k), &sub);
        }
        summary.validate();
        let e = Event::builder(&schema)
            .str("symbol", "OTX")
            .unwrap()
            .build();
        let matched = summary.match_event(&e);
        assert_eq!(matched.len(), 5);
        assert_eq!(matched, summary.match_event_scan(&e).matched);
        assert!(matched.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn honest_stats_report_probes_and_pruning() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        // Disjoint prefix rows: a query should prune all but its own
        // anchor bucket.
        for (k, sym) in ["AA*", "BB*", "CC*", "DD*"].iter().enumerate() {
            let sub = Subscription::builder(&schema)
                .str_pattern("symbol", sym)
                .unwrap()
                .build()
                .unwrap();
            summary.insert(BrokerId(0), LocalSubId(k as u32), &sub);
        }
        let e = Event::builder(&schema)
            .str("symbol", "AAPL")
            .unwrap()
            .build();
        let outcome = summary.match_event_with_stats(&e);
        assert_eq!(outcome.matched.len(), 1);
        // Only the AA* row is probed; the other three are pruned.
        assert_eq!(outcome.stats.rows_scanned, 1);
        assert_eq!(outcome.stats.rows_pruned, 3);
    }
}
