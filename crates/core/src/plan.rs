//! Compiled columnar match plans: the frozen, cache-linear probe layout
//! of a summary.
//!
//! The mutable summary structures ([`RangeSummary`], [`PatternSummary`])
//! are built for cheap maintenance: `Vec<RangeRow>` rows with per-row
//! heap `IdList`s, a `BTreeMap` for the equality values, hash maps for
//! literals. Probing them chases one heap pointer per row and dispatches
//! on `Interval` bound enums per comparison. A [`MatchPlan`] compiles
//! those rows into a structure-of-arrays form the matcher can stream:
//!
//! * per arithmetic attribute, an [`ArithBank`]: the disjoint sorted
//!   sub-range rows as two parallel `u64` key arrays (`lo_keys` /
//!   `hi_keys`, the order-preserving IEEE-754 transform of [`num_key`]
//!   with open/closed bounds folded in), the AACS_E values as one sorted
//!   key array, and CSR offsets into the shared postings arena;
//! * per string attribute, a [`StringBank`]: literal rows as a map to
//!   arena ranges, wildcard rows as an arena range per row (candidate
//!   selection and the pattern tests stay on the [`PatternSummary`]'s
//!   anchor index — only the posting storage is recompiled);
//! * one flat dense-`u32` **arena** holding every posting list of every
//!   bank back to back, so a probe feeds the counter kernel contiguous
//!   slices instead of per-row heap vectors.
//!
//! The lower-bound search over the key arrays is branchless (a halving
//! loop whose step is a conditional move, then a linear tail the
//! compiler can vectorize — see [`rank_le`]), and the counter kernel
//! packs the epoch stamp and the satisfied-attribute count into one
//! `u64` per dense id, so the hot loop performs a single random access
//! per posting.
//!
//! # Plans are derived state
//!
//! A plan is a pure function of the summary rows: it never travels on
//! the wire, never contributes to digests, and is rebuilt whenever the
//! rows change. [`BrokerSummary`](crate::BrokerSummary) drops its cached
//! plan on every mutation and recompiles lazily on the next match;
//! [`ShardedSummary`](crate::ShardedSummary) compiles one plan per shard
//! at snapshot-flip time, so the publish path always probes a frozen
//! plan and retired plans are reclaimed with their
//! [`ShardSet`](crate::shard) through the epoch machinery of
//! [`SnapshotCell`](crate::SnapshotCell).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use subsum_telemetry::Count;
use subsum_types::{Event, LowerBound, Num, UpperBound};

use crate::aacs::RangeSummary;
use crate::idlist::{idlist_range_slice, DenseId};
use crate::sacs::{PatternSummary, QueryCost};
use crate::summary::MatchStats;

/// Plan compilations (lazy flat rebuilds plus per-shard snapshot
/// compiles).
static CNT_PLAN_REBUILDS: Count = Count::new(subsum_telemetry::names::MATCH_PLAN_REBUILDS);
/// Plan rows whose posting slices fed the counter kernel (satisfied
/// range/point/literal rows plus matched wildcard rows), across events.
static CNT_PLAN_PROBE_ROWS: Count = Count::new(subsum_telemetry::names::MATCH_PLAN_PROBE_ROWS);

/// Low bits of a packed kernel state word holding the per-event
/// satisfied-attribute count; the high bits hold the event epoch. A mask
/// has at most 64 attributes, so the count fits with room to spare.
const COUNT_BITS: u32 = 16;
const COUNT_MASK: u64 = (1 << COUNT_BITS) - 1;

/// The order-preserving `u64` key of a `Num`: sign-flipped IEEE-754
/// bits. Total-order-isomorphic to `Num`'s `Ord` because `Num` excludes
/// NaN and normalizes `-0.0` at construction.
#[inline]
pub(crate) fn num_key(v: Num) -> u64 {
    let bits = v.get().to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// The smallest value key satisfying a lower bound. Keys are bijective
/// with the non-NaN floats, so `Excl(x)` is exactly "the key after
/// `x`"; `Excl(+inf)` saturates to an unsatisfiable key, which is the
/// correct (empty) semantics.
#[inline]
pub(crate) fn lower_key(b: LowerBound) -> u64 {
    match b {
        LowerBound::NegInf => 0,
        LowerBound::Incl(x) => num_key(x),
        LowerBound::Excl(x) => num_key(x).saturating_add(1),
    }
}

/// The largest value key satisfying an upper bound (mirror of
/// [`lower_key`]).
#[inline]
pub(crate) fn upper_key(b: UpperBound) -> u64 {
    match b {
        UpperBound::PosInf => u64::MAX,
        UpperBound::Incl(x) => num_key(x),
        UpperBound::Excl(x) => num_key(x).saturating_sub(1),
    }
}

/// Rows of the final linear tail of [`rank_le`]. Small enough to stay in
/// one or two cache lines, large enough that the halving loop never
/// branches on nearly-resolved ranges.
const RANK_TAIL: usize = 8;

/// The number of elements of the sorted array `keys` that are `<= key`
/// (the upper-bound rank). Branchless: the halving loop narrows with a
/// conditional add the compiler lowers to a cmov, and the tail counts
/// comparison results over a contiguous window — an auto-vectorizable
/// reduction with no data-dependent branches.
#[inline]
pub(crate) fn rank_le(keys: &[u64], key: u64) -> usize {
    let mut base = 0usize;
    let mut n = keys.len();
    // Invariant: rank ∈ [base, base + n]; every element before `base`
    // is <= key.
    while n > RANK_TAIL {
        let half = n / 2;
        if keys[base + half - 1] <= key {
            base += half;
        }
        n -= half;
    }
    let mut rank = base;
    for &k in &keys[base..base + n] {
        rank += usize::from(k <= key);
    }
    rank
}

/// The compiled arithmetic bank of one attribute: SoA keys over the
/// AACS_SR partition and the AACS_E values, with CSR offsets into the
/// plan's shared arena.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct ArithBank {
    /// Lower-bound key per sub-range row, ascending.
    pub(crate) lo_keys: Vec<u64>,
    /// Upper-bound key per sub-range row (same row order).
    pub(crate) hi_keys: Vec<u64>,
    /// Absolute arena offsets of the sub-range rows, length `rows + 1`.
    pub(crate) range_offsets: Vec<u32>,
    /// Equality-row value keys, ascending.
    pub(crate) point_keys: Vec<u64>,
    /// Absolute arena offsets of the equality rows, length `points + 1`.
    pub(crate) point_offsets: Vec<u32>,
}

impl ArithBank {
    /// Compiles `src`'s rows restricted to the dense range `[lo, hi)`,
    /// rebased to `d - lo`, appending postings to `arena`. `None` when
    /// no posting survives. The flat summary compiles with `lo = 0`,
    /// `hi = population`.
    fn build(
        src: &RangeSummary,
        lo: DenseId,
        hi: DenseId,
        arena: &mut Vec<DenseId>,
    ) -> Option<ArithBank> {
        let mut bank = ArithBank::default();
        bank.range_offsets.push(arena.len() as u32);
        for row in src.ranges() {
            let slice = idlist_range_slice(&row.ids, lo, hi);
            if slice.is_empty() {
                continue;
            }
            bank.lo_keys.push(lower_key(row.interval.lo()));
            bank.hi_keys.push(upper_key(row.interval.hi()));
            arena.extend(slice.iter().map(|&d| d - lo));
            bank.range_offsets.push(arena.len() as u32);
        }
        bank.point_offsets.push(arena.len() as u32);
        for (v, ids) in src.points() {
            let slice = idlist_range_slice(ids, lo, hi);
            if slice.is_empty() {
                continue;
            }
            bank.point_keys.push(num_key(v));
            arena.extend(slice.iter().map(|&d| d - lo));
            bank.point_offsets.push(arena.len() as u32);
        }
        if bank.lo_keys.is_empty() && bank.point_keys.is_empty() {
            None
        } else {
            Some(bank)
        }
    }
}

/// The compiled string bank of one attribute: arena ranges for the
/// literal rows and for each wildcard row (parallel to the source
/// [`PatternSummary`]'s row vector, whose anchor index still selects
/// the candidate rows and runs the pattern tests).
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct StringBank {
    /// Literal rows: value -> `(start, end)` arena range.
    pub(crate) literals: HashMap<String, (u32, u32)>,
    /// Wildcard rows: `(start, end)` arena range per row, in the source
    /// summary's row order.
    pub(crate) wild: Vec<(u32, u32)>,
}

impl StringBank {
    /// Compiles `src`'s posting storage into the arena. The source ids
    /// must already be in the plan's dense space (shard derivation
    /// rebases the `PatternSummary` itself before compiling).
    fn build(src: &PatternSummary, arena: &mut Vec<DenseId>) -> Option<StringBank> {
        if src.is_empty() {
            return None;
        }
        let mut bank = StringBank::default();
        for (lit, ids) in src.literal_rows() {
            let start = arena.len() as u32;
            arena.extend_from_slice(ids);
            bank.literals
                .insert(lit.clone(), (start, arena.len() as u32));
        }
        for ids in src.wildcard_postings() {
            let start = arena.len() as u32;
            arena.extend_from_slice(ids);
            bank.wild.push((start, arena.len() as u32));
        }
        Some(bank)
    }
}

/// A compiled, frozen probe structure over one summary (or one shard of
/// one): per-attribute SoA banks over a single shared postings arena.
/// Derived state — wire format and digests never see it.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct MatchPlan {
    /// Indexed by attribute id; `None` for string attributes and for
    /// arithmetic attributes without surviving postings.
    pub(crate) arith: Vec<Option<ArithBank>>,
    /// Indexed by attribute id; `None` for arithmetic attributes and
    /// for string attributes without surviving postings.
    pub(crate) strings: Vec<Option<StringBank>>,
    /// Every bank's posting lists, back to back (dense ids in the
    /// plan's local space).
    pub(crate) arena: Vec<DenseId>,
}

impl MatchPlan {
    /// Compiles a plan over the summary slots. Arithmetic rows are
    /// sliced to the dense range `[lo, hi)` and rebased to `d - lo`;
    /// the string summaries must already be in the target dense space
    /// (the flat summary's are, and shard derivation rebases its
    /// per-shard `PatternSummary` views before calling this).
    pub(crate) fn compile(
        arith: &[Option<RangeSummary>],
        strings: &[Option<PatternSummary>],
        lo: DenseId,
        hi: DenseId,
    ) -> MatchPlan {
        CNT_PLAN_REBUILDS.inc();
        let mut plan = MatchPlan::default();
        for slot in arith {
            let bank = slot
                .as_ref()
                .and_then(|s| ArithBank::build(s, lo, hi, &mut plan.arena));
            plan.arith.push(bank);
        }
        for slot in strings {
            let bank = slot
                .as_ref()
                .and_then(|s| StringBank::build(s, &mut plan.arena));
            plan.strings.push(bank);
        }
        plan
    }

    /// Probes the plan with one event, streaming the satisfied posting
    /// slices through the packed epoch-counter kernel: per posting one
    /// random access loads `state[d] = (epoch << 16) | count`, bumps the
    /// count (or restarts it when the epoch is stale), and marks the
    /// match bit the moment the count reaches `required[d]` — counts
    /// are monotone within an event, so the threshold fires exactly
    /// once per matched id and no candidate list or second pass exists.
    ///
    /// `strings` must be the summaries this plan was compiled from
    /// (their anchor indexes select candidate wildcard rows and run the
    /// pattern tests); `rows` is a reusable buffer for the matched row
    /// positions. Arithmetic banks skip per-attribute dedup entirely:
    /// the AACS partition is disjoint and `validate()` enforces that no
    /// id carries both a sub-range row containing a value and an
    /// equality row at it. String postings take the `seen`-stamped
    /// dedup path only when more than one row contributes.
    ///
    /// Returns the inclusive `(lo, hi)` range of bitmap words written
    /// in `words` (`lo > hi` when nothing matched). The caller owns
    /// extraction and must clear the written words.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_into(
        &self,
        event: &Event,
        strings: &[Option<PatternSummary>],
        required: &[u32],
        rows: &mut Vec<u32>,
        state: &mut [u64],
        seen: &mut [u64],
        words: &mut [u64],
        token: &mut u64,
        stats: &mut MatchStats,
    ) -> (usize, usize) {
        let epoch = *token + 1;
        let mut attr_token = epoch;
        let mut probe_rows = 0u64;
        let mut lo_w = usize::MAX;
        let mut hi_w = 0usize;
        for (attr, value) in event.iter() {
            attr_token += 1;
            let idx = attr.index();
            if let Some(bank) = self.arith.get(idx).and_then(Option::as_ref) {
                let Some(v) = value.as_num() else {
                    continue;
                };
                let key = num_key(v);
                let mut range_slice: &[DenseId] = &[];
                if !bank.lo_keys.is_empty() {
                    // Cost model mirrors `RangeSummary::query_into`:
                    // ⌈log₂ n⌉ + 1 probes, the rest pruned.
                    let probes = (usize::BITS - bank.lo_keys.len().leading_zeros()) as usize;
                    stats.rows_scanned += probes;
                    stats.rows_pruned += bank.lo_keys.len().saturating_sub(probes);
                    let r = rank_le(&bank.lo_keys, key);
                    if r > 0 && key <= bank.hi_keys[r - 1] {
                        let a = bank.range_offsets[r - 1] as usize;
                        let b = bank.range_offsets[r] as usize;
                        range_slice = &self.arena[a..b];
                    }
                }
                let mut point_slice: &[DenseId] = &[];
                if !bank.point_keys.is_empty() {
                    stats.rows_scanned += 1;
                    stats.rows_pruned += bank.point_keys.len() - 1;
                    let r = rank_le(&bank.point_keys, key);
                    if r > 0 && bank.point_keys[r - 1] == key {
                        let a = bank.point_offsets[r - 1] as usize;
                        let b = bank.point_offsets[r] as usize;
                        point_slice = &self.arena[a..b];
                    }
                }
                probe_rows +=
                    u64::from(!range_slice.is_empty()) + u64::from(!point_slice.is_empty());
                // Both slices are internally sorted-dedup, and per-id
                // disjoint across each other (see the method docs), so
                // every posting is a distinct id for this attribute.
                stats.ids_collected += range_slice.len() + point_slice.len();
                for slice in [range_slice, point_slice] {
                    count_postings(
                        slice, epoch, required, state, words, &mut lo_w, &mut hi_w, stats,
                    );
                }
            } else if let Some(bank) = self.strings.get(idx).and_then(Option::as_ref) {
                let Some(src) = strings.get(idx).and_then(Option::as_ref) else {
                    continue;
                };
                let Some(s) = value.as_str() else {
                    continue;
                };
                // Cost model mirrors `PatternSummary::query_into`: one
                // literal-map probe when the map is non-empty, plus
                // every index-selected wildcard row (tested, whether or
                // not it matched).
                let mut cost = QueryCost::default();
                let mut lit_slice: &[DenseId] = &[];
                if !bank.literals.is_empty() {
                    cost.rows_touched += 1;
                    if let Some(&(a, b)) = bank.literals.get(s) {
                        lit_slice = &self.arena[a as usize..b as usize];
                    }
                }
                rows.clear();
                let mut tested = 0usize;
                for pos in src.plan_candidates(s) {
                    tested += 1;
                    if src.pattern_matches(pos, s) {
                        rows.push(pos as u32);
                    }
                }
                cost.rows_touched += tested;
                cost.rows_pruned = bank.wild.len() - tested;
                stats.rows_scanned += cost.rows_touched;
                stats.rows_pruned += cost.rows_pruned;
                crate::sacs::record_query_cost(cost);
                let contributors = usize::from(!lit_slice.is_empty()) + rows.len();
                probe_rows += contributors as u64;
                if contributors <= 1 {
                    // A single contributing row is internally deduped:
                    // skip the `seen` stamps.
                    stats.ids_collected += lit_slice.len();
                    count_postings(
                        lit_slice, epoch, required, state, words, &mut lo_w, &mut hi_w, stats,
                    );
                    for &pos in rows.iter() {
                        let (a, b) = bank.wild[pos as usize];
                        let slice = &self.arena[a as usize..b as usize];
                        stats.ids_collected += slice.len();
                        count_postings(
                            slice, epoch, required, state, words, &mut lo_w, &mut hi_w, stats,
                        );
                    }
                } else {
                    // A subscription with several satisfied constraints
                    // on this attribute appears in several rows; count
                    // it once per attribute via the `seen` stamps.
                    count_postings_dedup(
                        lit_slice, epoch, attr_token, required, state, seen, words, &mut lo_w,
                        &mut hi_w, stats,
                    );
                    for &pos in rows.iter() {
                        let (a, b) = bank.wild[pos as usize];
                        let slice = &self.arena[a as usize..b as usize];
                        count_postings_dedup(
                            slice, epoch, attr_token, required, state, seen, words, &mut lo_w,
                            &mut hi_w, stats,
                        );
                    }
                }
            }
        }
        *token = attr_token;
        CNT_PLAN_PROBE_ROWS.add(probe_rows);
        (lo_w, hi_w)
    }
}

/// Streams one duplicate-free posting slice through the packed counter
/// kernel: one load, one store per posting, with the stale-epoch reset
/// folded into arithmetic instead of a branch.
#[allow(clippy::too_many_arguments)]
#[inline]
fn count_postings(
    slice: &[DenseId],
    epoch: u64,
    required: &[u32],
    state: &mut [u64],
    words: &mut [u64],
    lo_w: &mut usize,
    hi_w: &mut usize,
    stats: &mut MatchStats,
) {
    let mut candidates = 0usize;
    for &d in slice {
        let di = d as usize;
        let prev = state[di];
        let fresh = u64::from(prev >> COUNT_BITS != epoch);
        candidates += fresh as usize;
        let cnt = (prev & COUNT_MASK) * (1 - fresh) + 1;
        state[di] = (epoch << COUNT_BITS) | cnt;
        if cnt == u64::from(required[di]) {
            let w = di / 64;
            words[w] |= 1u64 << (di % 64);
            *lo_w = (*lo_w).min(w);
            *hi_w = (*hi_w).max(w);
        }
    }
    stats.candidates += candidates;
}

/// As [`count_postings`] with per-attribute dedup: a posting already
/// stamped with this attribute's token is skipped.
#[allow(clippy::too_many_arguments)]
#[inline]
fn count_postings_dedup(
    slice: &[DenseId],
    epoch: u64,
    attr_token: u64,
    required: &[u32],
    state: &mut [u64],
    seen: &mut [u64],
    words: &mut [u64],
    lo_w: &mut usize,
    hi_w: &mut usize,
    stats: &mut MatchStats,
) {
    for &d in slice {
        let di = d as usize;
        if seen[di] == attr_token {
            continue;
        }
        seen[di] = attr_token;
        stats.ids_collected += 1;
        let prev = state[di];
        let fresh = u64::from(prev >> COUNT_BITS != epoch);
        stats.candidates += fresh as usize;
        let cnt = (prev & COUNT_MASK) * (1 - fresh) + 1;
        state[di] = (epoch << COUNT_BITS) | cnt;
        if cnt == u64::from(required[di]) {
            let w = di / 64;
            words[w] |= 1u64 << (di % 64);
            *lo_w = (*lo_w).min(w);
            *hi_w = (*hi_w).max(w);
        }
    }
}

/// The lazily-compiled plan slot of a [`BrokerSummary`]: cloned
/// summaries share the compiled `Arc` until either side mutates, and
/// equality always holds — a plan is derived state, so two summaries
/// with equal rows are equal regardless of compile state.
#[derive(Debug, Default)]
pub(crate) struct PlanCell(OnceLock<Arc<MatchPlan>>);

impl PlanCell {
    /// The compiled plan, compiling (and caching) on first use.
    pub(crate) fn get_or_compile(&self, compile: impl FnOnce() -> MatchPlan) -> &MatchPlan {
        self.0.get_or_init(|| Arc::new(compile()))
    }

    /// Drops the cached plan (every row mutation calls this).
    pub(crate) fn invalidate(&mut self) {
        self.0.take();
    }

    /// The cached plan, if one has been compiled since the last
    /// mutation (validation cross-checks it against a fresh compile).
    pub(crate) fn cached(&self) -> Option<&MatchPlan> {
        self.0.get().map(Arc::as_ref)
    }
}

impl Clone for PlanCell {
    fn clone(&self) -> Self {
        let cell = PlanCell::default();
        if let Some(plan) = self.0.get() {
            let _ = cell.0.set(Arc::clone(plan));
        }
        cell
    }
}

impl PartialEq for PlanCell {
    /// Always equal: the plan is a pure function of the summary rows,
    /// which the owning summary's derived `PartialEq` already compares.
    fn eq(&self, _: &PlanCell) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: f64) -> Num {
        Num::new(v).unwrap()
    }

    #[test]
    fn num_key_is_order_isomorphic() {
        let values = [
            f64::NEG_INFINITY,
            -1.0e300,
            -2.5,
            -1.0,
            -f64::MIN_POSITIVE,
            0.0,
            f64::MIN_POSITIVE,
            0.5,
            1.0,
            2.5,
            1.0e300,
            f64::INFINITY,
        ];
        for a in values {
            for b in values {
                assert_eq!(
                    num_key(n(a)) <= num_key(n(b)),
                    n(a) <= n(b),
                    "key order mismatch for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn bound_keys_match_bound_semantics() {
        let probes = [-3.0, -1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 100.0];
        let bounds_lo = [
            LowerBound::NegInf,
            LowerBound::Incl(n(1.0)),
            LowerBound::Excl(n(1.0)),
        ];
        let bounds_hi = [
            UpperBound::PosInf,
            UpperBound::Incl(n(1.0)),
            UpperBound::Excl(n(1.0)),
        ];
        for v in probes {
            let kv = num_key(n(v));
            for lo in bounds_lo {
                assert_eq!(lower_key(lo) <= kv, lo.admits(n(v)), "{lo:?} vs {v}");
            }
            for hi in bounds_hi {
                assert_eq!(kv <= upper_key(hi), hi.admits(n(v)), "{hi:?} vs {v}");
            }
        }
    }

    #[test]
    fn rank_le_equals_partition_point() {
        // Exhaustive over lengths spanning the halving loop and the
        // linear tail, with duplicates, on every probe position.
        for len in 0usize..40 {
            let keys: Vec<u64> = (0..len as u64).map(|i| i / 3 * 4).collect();
            for probe in 0..=(len as u64 / 3 * 4 + 2) {
                assert_eq!(
                    rank_le(&keys, probe),
                    keys.partition_point(|&k| k <= probe),
                    "len {len} probe {probe}"
                );
            }
            assert_eq!(rank_le(&keys, u64::MAX), len);
        }
        assert_eq!(rank_le(&[], 7), 0);
    }

    #[test]
    fn plan_cell_equality_ignores_compile_state() {
        let a = PlanCell::default();
        let b = PlanCell::default();
        b.get_or_compile(MatchPlan::default);
        assert!(a == b);
        let c = b.clone();
        assert!(c.cached().is_some(), "clone shares the compiled plan");
        let mut d = c.clone();
        d.invalidate();
        assert!(d.cached().is_none());
    }

    #[test]
    fn empty_summaries_compile_to_empty_banks() {
        let arith = vec![None, Some(RangeSummary::new())];
        let strings = vec![Some(PatternSummary::new()), None];
        let plan = MatchPlan::compile(&arith, &strings, 0, 0);
        assert!(plan.arith.iter().all(Option::is_none));
        assert!(plan.strings.iter().all(Option::is_none));
        assert!(plan.arena.is_empty());
    }
}
