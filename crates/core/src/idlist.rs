//! Sorted posting lists shared by the summary row structures.
//!
//! Since the dense-id refactor, every row posting list (`IdList`) holds
//! 4-byte **dense ids** — indices into the owning [`BrokerSummary`]'s
//! intern table — instead of full multi-word [`SubscriptionId`] structs.
//! The intern table keeps dense order identical to `SubscriptionId` sort
//! order, so a sorted dense list resolves to a sorted id list without any
//! per-event sorting. The naive reference paths (`match_event_scan`,
//! `query_scan`) still traffic in full ids via [`SubIdList`].
//!
//! [`BrokerSummary`]: crate::BrokerSummary
//! [`SubscriptionId`]: subsum_types::SubscriptionId

use subsum_types::SubscriptionId;

/// A dense subscription id: the index of a [`SubscriptionId`] in the
/// owning summary's intern table. Dense ids are assigned so that dense
/// order equals `SubscriptionId` sort order at all times.
pub type DenseId = u32;

/// A sorted, deduplicated posting list of dense ids attached to a summary
/// row.
pub type IdList = Vec<DenseId>;

/// A sorted, deduplicated list of full subscription ids (the intern table
/// itself and the naive reference paths).
pub type SubIdList = Vec<SubscriptionId>;

/// Inserts `id` keeping the list sorted and deduplicated.
pub(crate) fn idlist_insert<T: Ord + Copy>(list: &mut Vec<T>, id: T) {
    if let Err(pos) = list.binary_search(&id) {
        list.insert(pos, id);
    }
}

/// Asserts the posting-list invariant: strictly ascending entries (sorted
/// and deduplicated). Compiled only for tests and debug builds; the
/// summary validators and the property tests call it after every
/// mutation.
///
/// `IdList` is a type alias, so this is a free function rather than a
/// method.
///
/// # Panics
///
/// Panics when the list is unsorted or contains duplicates.
#[cfg(any(test, debug_assertions))]
pub fn validate_idlist<T: Ord + Copy + std::fmt::Debug>(list: &[T]) {
    assert!(
        list.windows(2).all(|w| w[0] < w[1]),
        "id list is not strictly sorted: {list:?}"
    );
}

/// Merges the sorted `other` into the sorted `list`.
///
/// Small batches use insertion (cheap, in place); large batches use a
/// linear two-pointer merge so that summary merging stays linear in the
/// total id count.
pub(crate) fn idlist_merge<T: Ord + Copy>(list: &mut Vec<T>, other: &[T]) {
    debug_assert!(other.windows(2).all(|w| w[0] <= w[1]), "other is sorted");
    if other.len() <= 8 {
        for &id in other {
            idlist_insert(list, id);
        }
        return;
    }
    let mut merged = Vec::with_capacity(list.len() + other.len());
    let (mut i, mut j) = (0, 0);
    while i < list.len() && j < other.len() {
        match list[i].cmp(&other[j]) {
            std::cmp::Ordering::Less => {
                merged.push(list[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(other[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(list[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&list[i..]);
    while j < other.len() {
        // `other` may contain duplicates relative to nothing, but is
        // itself deduplicated; plain extend suffices.
        merged.push(other[j]);
        j += 1;
    }
    *list = merged;
}

/// The contiguous subslice of a sorted dense posting list whose ids lie
/// in `[lo, hi)` — the shard-derivation primitive: two binary searches,
/// no copying.
pub(crate) fn idlist_range_slice(list: &IdList, lo: DenseId, hi: DenseId) -> &[DenseId] {
    let a = list.partition_point(|&d| d < lo);
    let b = list.partition_point(|&d| d < hi);
    &list[a..b]
}

/// Applies a strictly monotone renumbering to a sorted dense posting list
/// in place. Monotonicity preserves both sortedness and dedup, so the
/// list invariant survives intern-table renumbering without a re-sort.
pub(crate) fn idlist_remap(list: &mut IdList, map: impl Fn(DenseId) -> DenseId) {
    for d in list.iter_mut() {
        *d = map(*d);
    }
    debug_assert!(
        list.windows(2).all(|w| w[0] < w[1]),
        "remap was not monotone"
    );
}

/// Deletes `gone` from the list (if present) and decrements every dense id
/// above it — the posting-list half of removing one intern-table slot.
/// Single pass, keeps the list sorted and deduplicated.
pub(crate) fn idlist_remove_remap(list: &mut IdList, gone: DenseId) {
    let mut w = 0;
    for r in 0..list.len() {
        let d = list[r];
        if d == gone {
            continue;
        }
        list[w] = if d > gone { d - 1 } else { d };
        w += 1;
    }
    list.truncate(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{AttrMask, BrokerId, LocalSubId};

    fn id(k: u32) -> SubscriptionId {
        SubscriptionId::new(BrokerId(0), LocalSubId(k), AttrMask::empty())
    }

    #[test]
    fn insert_keeps_sorted_dedup() {
        let mut l = IdList::new();
        for k in [5u32, 1, 3, 5, 1] {
            idlist_insert(&mut l, k);
        }
        assert_eq!(l, vec![1, 3, 5]);
    }

    #[test]
    fn insert_keeps_sorted_dedup_full_ids() {
        let mut l = SubIdList::new();
        for k in [5u32, 1, 3, 5, 1] {
            idlist_insert(&mut l, id(k));
        }
        assert_eq!(l, vec![id(1), id(3), id(5)]);
    }

    #[test]
    fn merge_small_and_large_agree() {
        let base: IdList = (0..50u32).step_by(3).collect();
        let other: IdList = (0..50u32).step_by(2).collect();
        let mut small_path = base.clone();
        for &x in &other {
            idlist_insert(&mut small_path, x);
        }
        let mut large_path = base.clone();
        idlist_merge(&mut large_path, &other);
        assert_eq!(small_path, large_path);
        assert!(large_path.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn merge_with_empty() {
        let mut l: IdList = vec![1];
        idlist_merge(&mut l, &[]);
        assert_eq!(l, vec![1]);
        let mut e = IdList::new();
        let other: IdList = (0..20u32).collect();
        idlist_merge(&mut e, &other);
        assert_eq!(e, other);
    }

    #[test]
    fn remap_shifts_monotonically() {
        let mut l: IdList = vec![0, 2, 5];
        idlist_remap(&mut l, |d| if d >= 2 { d + 1 } else { d });
        assert_eq!(l, vec![0, 3, 6]);
    }

    #[test]
    fn remove_remap_deletes_and_shifts() {
        let mut l: IdList = vec![0, 2, 5];
        idlist_remove_remap(&mut l, 2);
        assert_eq!(l, vec![0, 4]);
        // Absent id: only the shift applies.
        let mut m: IdList = vec![0, 4];
        idlist_remove_remap(&mut m, 1);
        assert_eq!(m, vec![0, 3]);
    }
}
