//! Sorted subscription-id lists shared by the summary row structures.

use subsum_types::SubscriptionId;

/// A sorted, deduplicated list of subscription ids attached to a summary
/// row.
pub type IdList = Vec<SubscriptionId>;

/// Inserts `id` keeping the list sorted and deduplicated.
pub(crate) fn idlist_insert(list: &mut IdList, id: SubscriptionId) {
    if let Err(pos) = list.binary_search(&id) {
        list.insert(pos, id);
    }
}

/// Asserts the [`IdList`] invariant: strictly ascending ids (sorted and
/// deduplicated). Compiled only for tests and debug builds; the summary
/// validators and the property tests call it after every mutation.
///
/// `IdList` is a type alias, so this is a free function rather than a
/// method.
///
/// # Panics
///
/// Panics when the list is unsorted or contains duplicates.
#[cfg(any(test, debug_assertions))]
pub fn validate_idlist(list: &IdList) {
    assert!(
        list.windows(2).all(|w| w[0] < w[1]),
        "id list is not strictly sorted: {list:?}"
    );
}

/// Merges the sorted `other` into the sorted `list`.
///
/// Small batches use insertion (cheap, in place); large batches use a
/// linear two-pointer merge so that summary merging stays linear in the
/// total id count.
pub(crate) fn idlist_merge(list: &mut IdList, other: &[SubscriptionId]) {
    debug_assert!(other.windows(2).all(|w| w[0] <= w[1]), "other is sorted");
    if other.len() <= 8 {
        for &id in other {
            idlist_insert(list, id);
        }
        return;
    }
    let mut merged = Vec::with_capacity(list.len() + other.len());
    let (mut i, mut j) = (0, 0);
    while i < list.len() && j < other.len() {
        match list[i].cmp(&other[j]) {
            std::cmp::Ordering::Less => {
                merged.push(list[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(other[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(list[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&list[i..]);
    while j < other.len() {
        // `other` may contain duplicates relative to nothing, but is
        // itself deduplicated; plain extend suffices.
        merged.push(other[j]);
        j += 1;
    }
    *list = merged;
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{AttrMask, BrokerId, LocalSubId};

    fn id(k: u32) -> SubscriptionId {
        SubscriptionId::new(BrokerId(0), LocalSubId(k), AttrMask::empty())
    }

    #[test]
    fn insert_keeps_sorted_dedup() {
        let mut l = IdList::new();
        for k in [5u32, 1, 3, 5, 1] {
            idlist_insert(&mut l, id(k));
        }
        assert_eq!(l, vec![id(1), id(3), id(5)]);
    }

    #[test]
    fn merge_small_and_large_agree() {
        let base: IdList = (0..50).step_by(3).map(id).collect();
        let other: IdList = (0..50).step_by(2).map(id).collect();
        let mut small_path = base.clone();
        for &x in &other {
            idlist_insert(&mut small_path, x);
        }
        let mut large_path = base.clone();
        idlist_merge(&mut large_path, &other);
        assert_eq!(small_path, large_path);
        assert!(large_path.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn merge_with_empty() {
        let mut l: IdList = vec![id(1)];
        idlist_merge(&mut l, &[]);
        assert_eq!(l, vec![id(1)]);
        let mut e = IdList::new();
        let other: IdList = (0..20).map(id).collect();
        idlist_merge(&mut e, &other);
        assert_eq!(e, other);
    }
}
