//! Wire format for subscription summaries.
//!
//! This codec produces the byte streams brokers actually exchange during
//! summary propagation; its measured sizes are what the bandwidth
//! experiments (Fig. 8) account, and they track the analytic model of
//! [`stats`](crate::stats) (equations 1 and 2) up to a small fixed header
//! overhead per attribute.
//!
//! Arithmetic values are encoded at the configured `s_st` width — 4 bytes
//! (IEEE-754 single) per Table 2, or 8 bytes for lossless round-trips.
//! Subscription ids are bit-packed per [`IdLayout`], occupying exactly
//! `s_id` bytes each.

use std::fmt;

use subsum_types::{
    ByteReader, ByteWriter, DecodeError, IdLayout, Interval, LowerBound, Num, Pattern, Schema,
    SubscriptionId, TypeError, UpperBound,
};

use crate::idlist::SubIdList;
use crate::summary::BrokerSummary;

/// Arithmetic value width on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArithWidth {
    /// 4-byte IEEE-754 single precision — the paper's `s_st = 4`
    /// (Table 2). Values beyond single precision are rounded.
    #[default]
    Four,
    /// 8-byte IEEE-754 double precision — lossless.
    Eight,
}

impl ArithWidth {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            ArithWidth::Four => 4,
            ArithWidth::Eight => 8,
        }
    }
}

/// Errors from [`SummaryCodec::decode`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireError {
    /// The byte stream was truncated or structurally malformed.
    Decode(DecodeError),
    /// A decoded component violated the type layer (bad pattern, id
    /// overflow, NaN).
    Type(TypeError),
    /// The version byte is unknown.
    UnsupportedVersion(u8),
    /// An attribute index exceeded the schema.
    AttributeOutOfRange(u16),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Decode(e) => write!(f, "summary decode failed: {e}"),
            WireError::Type(e) => write!(f, "summary decode produced invalid data: {e}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported summary version {v}"),
            WireError::AttributeOutOfRange(a) => {
                write!(f, "attribute index {a} outside the schema")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

impl From<TypeError> for WireError {
    fn from(e: TypeError) -> Self {
        WireError::Type(e)
    }
}

const VERSION: u8 = 1;

/// Arithmetic width wire tags (the byte after the version). Written by
/// the encoder and matched by name in the decoder; the `cargo xtask
/// check` wire-tag lint enforces the pairing.
const TAG_WIDTH_FOUR: u8 = 4;
const TAG_WIDTH_EIGHT: u8 = 8;

/// Encoder/decoder for [`BrokerSummary`] byte streams.
///
/// # Example
///
/// ```
/// use subsum_core::{BrokerSummary, SummaryCodec, ArithWidth};
/// use subsum_types::{stock_schema, IdLayout, Subscription, NumOp,
///                    BrokerId, LocalSubId};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schema = stock_schema();
/// let layout = IdLayout::new(24, 1000, schema.len() as u32)?;
/// let codec = SummaryCodec::new(layout, ArithWidth::Eight);
///
/// let mut summary = BrokerSummary::new(schema.clone());
/// let sub = Subscription::builder(&schema)
///     .num("price", NumOp::Gt, 8.30)?
///     .build()?;
/// summary.insert(BrokerId(3), LocalSubId(7), &sub);
///
/// let bytes = codec.encode(&summary)?;
/// let decoded = codec.decode(&bytes, &schema)?;
/// assert_eq!(decoded, summary);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryCodec {
    layout: IdLayout,
    width: ArithWidth,
}

impl SummaryCodec {
    /// Creates a codec for the given id layout and arithmetic width.
    pub fn new(layout: IdLayout, width: ArithWidth) -> Self {
        SummaryCodec { layout, width }
    }

    /// The id layout in force.
    pub fn layout(&self) -> IdLayout {
        self.layout
    }

    /// Serializes a summary.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::IdOverflow`] if a subscription id exceeds the
    /// codec's layout.
    pub fn encode(&self, summary: &BrokerSummary) -> Result<bytes::Bytes, TypeError> {
        let mut w = ByteWriter::new();
        w.u8(VERSION);
        w.u8(match self.width {
            ArithWidth::Four => TAG_WIDTH_FOUR,
            ArithWidth::Eight => TAG_WIDTH_EIGHT,
        });
        let schema = summary.schema();

        // Row postings are dense ids internal to the summary; the wire
        // stays representation-free, so each list is resolved to full
        // subscription ids through one reused buffer before encoding.
        let mut resolved = SubIdList::new();

        let arith_attrs: Vec<_> = schema
            .arithmetic_attrs()
            .filter_map(|a| summary.arith_summary(a).map(|s| (a, s)))
            .filter(|(_, s)| !s.is_empty())
            .collect();
        w.u16(arith_attrs.len() as u16);
        for (attr, s) in arith_attrs {
            w.u16(attr.0);
            w.u32(s.range_rows() as u32);
            w.u32(s.point_rows() as u32);
            for row in s.ranges() {
                self.put_interval(&mut w, &row.interval);
                summary.resolve_postings(&row.ids, &mut resolved);
                self.put_idlist(&mut w, &resolved)?;
            }
            for (v, ids) in s.points() {
                self.put_num(&mut w, v);
                summary.resolve_postings(ids, &mut resolved);
                self.put_idlist(&mut w, &resolved)?;
            }
        }

        let string_attrs: Vec<_> = schema
            .string_attrs()
            .filter_map(|a| summary.string_summary(a).map(|s| (a, s)))
            .filter(|(_, s)| !s.is_empty())
            .collect();
        w.u16(string_attrs.len() as u16);
        for (attr, s) in string_attrs {
            w.u16(attr.0);
            w.u32(s.row_count() as u32);
            for (pattern, ids) in s.rows() {
                w.str16(&pattern.to_string());
                summary.resolve_postings(ids, &mut resolved);
                self.put_idlist(&mut w, &resolved)?;
            }
        }
        Ok(w.into_bytes())
    }

    /// The exact byte size [`SummaryCodec::encode`] would produce,
    /// computed arithmetically — no encode pass, no allocation. The
    /// chaos and bandwidth accounting paths call this per message, so
    /// sizing must not cost an encode of the full summary.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::IdOverflow`] under the same conditions as
    /// `encode`.
    pub fn encoded_len(&self, summary: &BrokerSummary) -> Result<usize, TypeError> {
        let id_len = self.layout.byte_len();
        let num_len = self.width.bytes();
        let dense_ids = summary.intern_table();
        // An id list costs a u32 count plus `s_id` bytes per id; overflow
        // is checked per id so the error conditions match `encode`.
        let idlist_len = |ids: &[crate::idlist::DenseId]| -> Result<usize, TypeError> {
            for &d in ids {
                self.layout.encode(dense_ids.resolve(d))?;
            }
            // BOUND: in-memory id-list sizes are far below usize::MAX.
            Ok(4 + ids.len() * id_len)
        };
        let schema = summary.schema();
        let mut len = 1 + 1 + 2; // BOUND: version + width tag + arith attr count

        for (_, s) in schema
            .arithmetic_attrs()
            .filter_map(|a| summary.arith_summary(a).map(|s| (a, s)))
            .filter(|(_, s)| !s.is_empty())
        {
            len += 2 + 4 + 4; // BOUND: attr + range count + point count
            for row in s.ranges() {
                // Per-row byte counts are far below usize::MAX.
                // BOUND: 0..=2 finite interval endpoints.
                let finite = usize::from(!matches!(row.interval.lo(), LowerBound::NegInf))
                    + usize::from(!matches!(row.interval.hi(), UpperBound::PosInf));
                // BOUND: as above.
                len += 1 + finite * num_len + idlist_len(&row.ids)?;
            }
            for (_, ids) in s.points() {
                len += num_len + idlist_len(ids)?; // BOUND: one point row
            }
        }

        len += 2; // BOUND: string attr count
        for (_, s) in schema
            .string_attrs()
            .filter_map(|a| summary.string_summary(a).map(|s| (a, s)))
            .filter(|(_, s)| !s.is_empty())
        {
            len += 2 + 4; // BOUND: attr + row count
            for (pattern, ids) in s.rows() {
                len += 2 + pattern.wire_size() + idlist_len(ids)?; // BOUND: one row
            }
        }
        Ok(len)
    }

    /// Deserializes a summary over `schema`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the stream is truncated, of an unknown
    /// version, or structurally invalid for the schema.
    pub fn decode(&self, bytes: &[u8], schema: &Schema) -> Result<BrokerSummary, WireError> {
        let mut r = ByteReader::new(bytes);
        let version = r.u8()?;
        if version != VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let width = match r.u8()? {
            TAG_WIDTH_FOUR => ArithWidth::Four,
            TAG_WIDTH_EIGHT => ArithWidth::Eight,
            _ => return Err(WireError::Decode(DecodeError::Malformed("arith width"))),
        };
        let mut summary = BrokerSummary::new(schema.clone());

        // Two-phase decode: first collect every row with its full
        // subscription ids, then hand the batch to the summary so it can
        // rebuild its dense-id state once, linearly, over the union.
        let mut arith_rows = Vec::new();
        let mut point_rows = Vec::new();
        let mut string_rows = Vec::new();

        let n_arith = r.u16()?;
        for _ in 0..n_arith {
            let attr = r.u16()?;
            if attr as usize >= schema.len() {
                return Err(WireError::AttributeOutOfRange(attr));
            }
            let attr = subsum_types::AttrId(attr);
            let n_ranges = r.u32()?;
            let n_points = r.u32()?;
            for _ in 0..n_ranges {
                let iv = self.get_interval(&mut r, width)?;
                let ids = self.get_idlist(&mut r)?;
                arith_rows.push((attr, iv, ids));
            }
            for _ in 0..n_points {
                let v = self.get_num(&mut r, width)?;
                let ids = self.get_idlist(&mut r)?;
                point_rows.push((attr, v, ids));
            }
        }

        let n_str = r.u16()?;
        for _ in 0..n_str {
            let attr = r.u16()?;
            if attr as usize >= schema.len() {
                return Err(WireError::AttributeOutOfRange(attr));
            }
            let attr = subsum_types::AttrId(attr);
            let n_rows = r.u32()?;
            for _ in 0..n_rows {
                let text = r.str16()?.to_owned();
                let pattern = Pattern::parse(&text)?;
                let ids = self.get_idlist(&mut r)?;
                string_rows.push((attr, pattern, ids));
            }
        }
        summary.install_decoded_rows(&arith_rows, &point_rows, &string_rows);
        Ok(summary)
    }

    fn put_num(&self, w: &mut ByteWriter, v: Num) {
        match self.width {
            ArithWidth::Four => w.u32((v.get() as f32).to_bits()),
            ArithWidth::Eight => w.f64(v.get()),
        }
    }

    fn get_num(&self, r: &mut ByteReader<'_>, width: ArithWidth) -> Result<Num, WireError> {
        let raw = match width {
            ArithWidth::Four => f32::from_bits(r.u32()?) as f64,
            ArithWidth::Eight => r.f64()?,
        };
        Ok(Num::new(raw)?)
    }

    fn put_interval(&self, w: &mut ByteWriter, iv: &Interval) {
        let mut flags = 0u8;
        let (lo_val, lo_flags) = match iv.lo() {
            LowerBound::NegInf => (None, 0b0001),
            LowerBound::Incl(v) => (Some(v), 0b0010),
            LowerBound::Excl(v) => (Some(v), 0),
        };
        let (hi_val, hi_flags) = match iv.hi() {
            UpperBound::PosInf => (None, 0b0100),
            UpperBound::Incl(v) => (Some(v), 0b1000),
            UpperBound::Excl(v) => (Some(v), 0),
        };
        flags |= lo_flags | hi_flags;
        w.u8(flags);
        if let Some(v) = lo_val {
            self.put_num(w, v);
        }
        if let Some(v) = hi_val {
            self.put_num(w, v);
        }
    }

    fn get_interval(
        &self,
        r: &mut ByteReader<'_>,
        width: ArithWidth,
    ) -> Result<Interval, WireError> {
        let flags = r.u8()?;
        let lo = if flags & 0b0001 != 0 {
            LowerBound::NegInf
        } else {
            let v = self.get_num(r, width)?;
            if flags & 0b0010 != 0 {
                LowerBound::Incl(v)
            } else {
                LowerBound::Excl(v)
            }
        };
        let hi = if flags & 0b0100 != 0 {
            UpperBound::PosInf
        } else {
            let v = self.get_num(r, width)?;
            if flags & 0b1000 != 0 {
                UpperBound::Incl(v)
            } else {
                UpperBound::Excl(v)
            }
        };
        Ok(Interval::new(lo, hi))
    }

    fn put_idlist(&self, w: &mut ByteWriter, ids: &[SubscriptionId]) -> Result<(), TypeError> {
        w.u32(ids.len() as u32);
        let mut buf = Vec::with_capacity(self.layout.byte_len());
        for &id in ids {
            buf.clear();
            self.layout.encode_bytes(id, &mut buf)?;
            w.bytes(&buf);
        }
        Ok(())
    }

    fn get_idlist(&self, r: &mut ByteReader<'_>) -> Result<SubIdList, WireError> {
        let n = r.u32()? as usize;
        let id_len = self.layout.byte_len();
        let mut out = SubIdList::with_capacity(n.min(4096));
        for _ in 0..n {
            let raw = r.bytes(id_len)?;
            let (id, _) = self
                .layout
                .decode_bytes(raw)
                .ok_or(WireError::Decode(DecodeError::UnexpectedEnd))?;
            out.push(id);
        }
        // Wire input is untrusted: restore the sorted-dedup invariant the
        // summary structures rely on (well-formed streams are already
        // sorted, making this a no-op check).
        // BOUND: windows(2) slices always hold exactly two elements.
        if !out.windows(2).all(|w| w[0] < w[1]) {
            out.sort_unstable();
            out.dedup();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{stock_schema, BrokerId, LocalSubId, NumOp, StrOp, Subscription};

    fn codec(schema: &Schema, width: ArithWidth) -> SummaryCodec {
        let layout = IdLayout::new(24, 1000, schema.len() as u32).unwrap();
        SummaryCodec::new(layout, width)
    }

    fn sample_summary(schema: &Schema) -> BrokerSummary {
        let mut summary = BrokerSummary::new(schema.clone());
        let s1 = Subscription::builder(schema)
            .str_pattern("exchange", "N*SE")
            .unwrap()
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .num("price", NumOp::Lt, 8.75)
            .unwrap()
            .num("price", NumOp::Gt, 8.25)
            .unwrap()
            .build()
            .unwrap();
        let s2 = Subscription::builder(schema)
            .str_op("symbol", StrOp::Prefix, "OT")
            .unwrap()
            .num("price", NumOp::Eq, 8.25)
            .unwrap()
            .num("volume", NumOp::Gt, 130000.0)
            .unwrap()
            .build()
            .unwrap();
        summary.insert(BrokerId(3), LocalSubId(1), &s1);
        summary.insert(BrokerId(5), LocalSubId(2), &s2);
        summary
    }

    #[test]
    fn roundtrip_lossless_width8() {
        let schema = stock_schema();
        let summary = sample_summary(&schema);
        let c = codec(&schema, ArithWidth::Eight);
        let bytes = c.encode(&summary).unwrap();
        let decoded = c.decode(&bytes, &schema).unwrap();
        assert_eq!(decoded, summary);
    }

    #[test]
    fn roundtrip_width4_preserves_f32_values() {
        let schema = stock_schema();
        // Quarter fractions and small integers are f32-exact.
        let summary = sample_summary(&schema);
        let c = codec(&schema, ArithWidth::Four);
        let bytes = c.encode(&summary).unwrap();
        let decoded = c.decode(&bytes, &schema).unwrap();
        assert_eq!(decoded, summary);
        // The 4-byte stream is strictly smaller.
        let c8 = codec(&schema, ArithWidth::Eight);
        assert!(bytes.len() < c8.encode(&summary).unwrap().len());
    }

    #[test]
    fn empty_summary_roundtrip() {
        let schema = stock_schema();
        let summary = BrokerSummary::new(schema.clone());
        let c = codec(&schema, ArithWidth::Four);
        let bytes = c.encode(&summary).unwrap();
        assert_eq!(c.decode(&bytes, &schema).unwrap(), summary);
        // Header: version + width + two zero counters.
        assert_eq!(bytes.len(), 1 + 1 + 2 + 2);
    }

    #[test]
    fn truncated_stream_errors() {
        let schema = stock_schema();
        let summary = sample_summary(&schema);
        let c = codec(&schema, ArithWidth::Eight);
        let bytes = c.encode(&summary).unwrap();
        for cut in [0, 1, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                c.decode(&bytes[..cut], &schema).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn unknown_version_rejected() {
        let schema = stock_schema();
        let c = codec(&schema, ArithWidth::Four);
        let err = c.decode(&[9, 4, 0, 0, 0, 0], &schema).unwrap_err();
        assert_eq!(err, WireError::UnsupportedVersion(9));
    }

    #[test]
    fn attribute_out_of_range_rejected() {
        let schema = stock_schema();
        let c = codec(&schema, ArithWidth::Four);
        let mut w = ByteWriter::new();
        w.u8(1); // version
        w.u8(4); // width
        w.u16(1); // one arithmetic attr
        w.u16(99); // bogus attribute index
        w.u32(0);
        w.u32(0);
        w.u16(0);
        let err = c.decode(&w.into_bytes(), &schema).unwrap_err();
        assert_eq!(err, WireError::AttributeOutOfRange(99));
    }

    #[test]
    fn size_tracks_analytic_model() {
        use crate::stats::{SizeParams, SummaryStats};
        let schema = stock_schema();
        let summary = sample_summary(&schema);
        let c = codec(&schema, ArithWidth::Four);
        let measured = c.encoded_len(&summary).unwrap();
        let analytic = SummaryStats::of(&summary).total_size(SizeParams::default());
        // The wire stream adds per-attribute headers, interval flags and
        // list length prefixes; it must stay within a small factor of the
        // analytic size and never undercount.
        assert!(measured >= analytic);
        assert!(
            measured <= 2 * analytic + 64,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn decode_of_merged_summaries_roundtrips() {
        let schema = stock_schema();
        let mut a = sample_summary(&schema);
        let mut b = BrokerSummary::new(schema.clone());
        let s3 = Subscription::builder(&schema)
            .num("low", NumOp::Lt, 8.0)
            .unwrap()
            .build()
            .unwrap();
        b.insert(BrokerId(7), LocalSubId(9), &s3);
        a.merge(&b);
        let c = codec(&schema, ArithWidth::Eight);
        let bytes = c.encode(&a).unwrap();
        assert_eq!(c.decode(&bytes, &schema).unwrap(), a);
    }
}
