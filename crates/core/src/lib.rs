//! Subscription summaries — the core contribution of Triantafillou &
//! Economides, *Subscription Summarization: A New Paradigm for Efficient
//! Publish/Subscribe Systems* (ICDCS 2004).
//!
//! A broker summarizes the subscriptions it receives into two compact
//! per-attribute structures instead of storing subscription entities:
//!
//! * [`RangeSummary`] (**AACS**, §3.1/Fig. 4) — non-overlapping value
//!   sub-ranges plus out-of-range equality values for each arithmetic
//!   attribute, each row carrying a subscription-id list;
//! * [`PatternSummary`] (**SACS**, §3.1/Fig. 5) — general (covering) glob
//!   patterns for each string attribute, again with id lists.
//!
//! [`BrokerSummary`] combines the structures over a schema, implements the
//! event-matching **Algorithm 1** (§3.3) with its per-id attribute
//! counters, supports *merging* into multi-broker summaries (§4.1),
//! removal and rebuild maintenance, an analytic size model matching the
//! paper's equations (1)–(2) ([`SummaryStats`]), and a compact wire format
//! ([`SummaryCodec`]) whose measured sizes drive the bandwidth
//! experiments.
//!
//! # Matching guarantee
//!
//! Summary matching never produces false negatives; SACS generalization
//! may produce false positives, which the subscription's home broker
//! eliminates by re-checking candidates against its exact subscription
//! store (two-tier matching; see the `subsum-broker` crate).
//!
//! # Example
//!
//! ```
//! use subsum_core::BrokerSummary;
//! use subsum_types::{stock_schema, Subscription, Event, StrOp,
//!                    BrokerId, LocalSubId};
//!
//! # fn main() -> Result<(), subsum_types::TypeError> {
//! let schema = stock_schema();
//! let mut summary = BrokerSummary::new(schema.clone());
//! let sub = Subscription::builder(&schema)
//!     .str_op("symbol", StrOp::Prefix, "OT")?
//!     .build()?;
//! let id = summary.insert(BrokerId(2), LocalSubId(0), &sub);
//!
//! let event = Event::builder(&schema).str("symbol", "OTE")?.build();
//! assert_eq!(summary.match_event(&event), vec![id]);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the crate is safe code except for the
// epoch-based snapshot reclamation in `snapshot`, which carries a
// module-scoped `allow(unsafe_code)` and a written safety argument.
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod aacs;
mod digest;
mod idlist;
mod plan;
mod sacs;
mod shard;
mod snapshot;
mod stats;
mod summary;
mod wire;

pub use aacs::{RangeRow, RangeSummary};
pub use digest::SummaryDigest;
#[cfg(any(test, debug_assertions))]
pub use idlist::validate_idlist;
pub use idlist::{DenseId, IdList, SubIdList};
pub use sacs::{PatternRow, PatternSummary, QueryCost};
pub use shard::{ShardScratch, ShardedSummary};
pub use snapshot::{SnapshotCell, SnapshotGuard, SnapshotReader, SnapshotStats};
pub use stats::{SizeParams, SummaryStats};
pub use summary::{BrokerSummary, MatchOutcome, MatchScratch, MatchStats};
pub use wire::{ArithWidth, SummaryCodec, WireError};
