//! Epoch-stamped snapshot pointers with deferred reclamation — the
//! read-mostly concurrency primitive behind [`crate::ShardedSummary`].
//!
//! A [`SnapshotCell`] holds one heap-allocated *version* of a value
//! behind an atomic pointer. Writers build a replacement off to the side
//! and [`SnapshotCell::publish`] it with a single pointer swap; readers
//! [`SnapshotReader::pin`] the current version with two atomic stores
//! and a load — no lock, no CAS loop against other readers, and no
//! allocation — and hold a borrow of it for as long as the returned
//! guard lives. A publish therefore never stalls matching, and matching
//! never stalls a publish.
//!
//! # Protocol
//!
//! The cell keeps a monotone **epoch** counter next to the pointer.
//! Every reader owns an *announcement slot* (one `AtomicU64`; `0` means
//! quiescent). The protocol, all `SeqCst`:
//!
//! * **pin**: read the epoch `e`, store `e` into the slot, re-read the
//!   epoch; if it moved, retry. Only then load the pointer.
//! * **publish**: swap the pointer, bump the epoch to `e'`, and push the
//!   old pointer onto a limbo list tagged with retire epoch `e'`.
//! * **reclaim**: a limbo entry with retire epoch `e'` is freed once
//!   every registered slot is either quiescent or announces `≥ e'`.
//!
//! Safety argument: suppose a guard still holds the retired pointer
//! `p`. Its pointer load returned `p`, so in the `SeqCst` total order
//! that load precedes the swap that retired `p`; the announcement
//! preceded the load (program order) and announced an epoch value read
//! before the re-check — hence strictly below the retire epoch `e'`
//! (the bump to `e'` follows the swap). The writer's scan happens after
//! the bump, reads that announcement, sees a non-zero value `< e'`, and
//! defers. Conversely a slot announcing `≥ e'` pinned after the bump,
//! so its load saw the swap and cannot hold `p` (retired pointers are
//! never re-published). The re-check closes the announce/load window: a
//! reader that announced a stale epoch retries before ever loading the
//! pointer. An exhaustive interleaving model of exactly this step
//! sequence is checked in `tests/snapshot_model.rs`.
//!
//! Registration, publishing and reclamation serialize on one internal
//! mutex; the read path never touches it.
//!
//! Versions are opaque to the cell: a retired `ShardSet` takes its
//! per-shard compiled match plans (key banks plus postings arena,
//! [`crate::plan`]) through the limbo list with it, so a matcher still
//! probing a frozen plan keeps it alive via its pin — plans need no
//! reclamation machinery of their own.

// The pointer flip/deref/reclaim protocol needs raw pointers; this is
// the one module in the crate allowed to use `unsafe`, and every use is
// confined to the invariants proven above (and model-checked in
// `tests/snapshot_model.rs`, raced in `tests/snapshot_stress.rs`).
#![allow(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, MutexGuard, Weak};

use subsum_telemetry::Count;

/// Snapshot versions published (pointer flips), across all cells.
static CNT_FLIPS: Count = Count::new(subsum_telemetry::names::SUMMARY_SNAPSHOT_FLIPS);
/// Retired versions whose reclamation an active reader deferred.
static CNT_DEFERRED: Count = Count::new(subsum_telemetry::names::SUMMARY_DEFERRED_RECLAIMS);

/// A retired version awaiting quiescence.
struct Retired<T> {
    /// The epoch at which the version stopped being current; safe to
    /// free once no reader announces an older (non-zero) epoch.
    epoch: u64,
    ptr: *mut T,
    /// Whether this entry already drove the deferred-reclaims counter
    /// (counted once per version, not once per failed sweep).
    counted: bool,
}

/// Registration and limbo state, behind the writer-side mutex.
struct CellInner<T> {
    /// Announcement slots of live readers (weak: a dropped reader is
    /// pruned on the next sweep).
    readers: Vec<Weak<AtomicU64>>,
    limbo: Vec<Retired<T>>,
}

/// A lock-free-to-read, single-pointer snapshot of a `T`.
///
/// See the module docs for the protocol. The cell always holds a
/// current version, so [`SnapshotReader::pin`] never fails.
pub struct SnapshotCell<T> {
    current: AtomicPtr<T>,
    /// Monotone version counter; starts at 1 so `0` can mean
    /// "quiescent" in reader slots.
    epoch: AtomicU64,
    inner: Mutex<CellInner<T>>,
    flips: AtomicU64,
    deferred: AtomicU64,
}

// SAFETY: the cell owns heap versions of `T` and hands `&T` to readers
// on other threads, so `T: Send + Sync` is exactly the required bound;
// the raw pointers are owning pointers managed under the protocol above.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
// SAFETY: as for `Send` — a shared cell only ever exposes `&T`.
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("epoch", &self.epoch.load(SeqCst))
            .finish_non_exhaustive()
    }
}

/// Counters exposed for tests and telemetry probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Versions published (pointer flips).
    pub flips: u64,
    /// Retired versions whose reclamation was deferred at least once
    /// because a reader still announced an older epoch.
    pub deferred_reclaims: u64,
    /// Retired versions currently awaiting quiescence.
    pub limbo: usize,
}

impl<T> SnapshotCell<T> {
    /// Creates a cell whose first version is `value`.
    pub fn new(value: T) -> Self {
        SnapshotCell {
            current: AtomicPtr::new(Box::into_raw(Box::new(value))),
            epoch: AtomicU64::new(1),
            inner: Mutex::new(CellInner {
                readers: Vec::new(),
                limbo: Vec::new(),
            }),
            flips: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
        }
    }

    /// The writer-side state; a poisoned mutex is recovered because the
    /// guarded state stays structurally valid across panics (the vecs
    /// are only ever pushed/retained).
    fn lock(&self) -> MutexGuard<'_, CellInner<T>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a new reader on the cell.
    pub fn reader(self: &Arc<Self>) -> SnapshotReader<T> {
        let slot = Arc::new(AtomicU64::new(0));
        let mut inner = self.lock();
        inner.readers.retain(|w| w.strong_count() > 0);
        inner.readers.push(Arc::downgrade(&slot));
        drop(inner);
        SnapshotReader {
            cell: Arc::clone(self),
            slot,
        }
    }

    /// Publishes `value` as the new current version. The previous
    /// version is retired into the limbo list and freed once every
    /// registered reader has moved past it. Readers are never blocked;
    /// concurrent publishers serialize on the internal mutex.
    pub fn publish(&self, value: T) {
        let fresh = Box::into_raw(Box::new(value));
        let mut inner = self.lock();
        let old = self.current.swap(fresh, SeqCst);
        let retire_epoch = self.epoch.fetch_add(1, SeqCst) + 1;
        inner.limbo.push(Retired {
            epoch: retire_epoch,
            ptr: old,
            counted: false,
        });
        self.flips.fetch_add(1, SeqCst);
        CNT_FLIPS.inc();
        self.sweep(&mut inner);
    }

    /// Attempts to reclaim quiescent limbo entries (also callable from
    /// tests to observe reclamation without publishing).
    pub fn try_reclaim(&self) {
        let mut inner = self.lock();
        self.sweep(&mut inner);
    }

    fn sweep(&self, inner: &mut CellInner<T>) {
        inner.readers.retain(|w| w.strong_count() > 0);
        let announced: Vec<u64> = inner
            .readers
            .iter()
            .filter_map(Weak::upgrade)
            .map(|slot| slot.load(SeqCst))
            .collect();
        let deferred = &self.deferred;
        inner.limbo.retain_mut(|retired| {
            let blocked = announced.iter().any(|&a| a != 0 && a < retired.epoch);
            if blocked {
                if !retired.counted {
                    retired.counted = true;
                    deferred.fetch_add(1, SeqCst);
                    CNT_DEFERRED.inc();
                }
                return true;
            }
            // SAFETY: the pointer came out of `publish`'s swap (uniquely
            // owned) and the loop above just re-checked that every
            // announced epoch is quiescent or >= its retire epoch.
            drop(unsafe { Box::from_raw(retired.ptr) });
            false
        });
    }

    /// Current counters (see [`SnapshotStats`]).
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            flips: self.flips.load(SeqCst),
            deferred_reclaims: self.deferred.load(SeqCst),
            limbo: self.lock().limbo.len(),
        }
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no guards can outlive the cell (they borrow
        // readers, which hold the owning Arc), so everything is freed.
        let inner = self.inner.get_mut();
        let inner = match inner {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        for retired in inner.limbo.drain(..) {
            // SAFETY: `&mut self` proves no guard is live (guards borrow
            // readers, which hold the owning Arc), so every limbo
            // pointer is uniquely owned again.
            drop(unsafe { Box::from_raw(retired.ptr) });
        }
        let current = *self.current.get_mut();
        // SAFETY: same exclusivity — the current pointer has no readers.
        drop(unsafe { Box::from_raw(current) });
    }
}

/// A registered reader of a [`SnapshotCell`]. Each reader owns one
/// announcement slot; [`SnapshotReader::pin`] takes `&mut self`, so one
/// reader holds at most one pin at a time (clone the reader — or hand
/// one to each worker — for concurrent pins).
#[derive(Debug)]
pub struct SnapshotReader<T> {
    cell: Arc<SnapshotCell<T>>,
    slot: Arc<AtomicU64>,
}

impl<T> Clone for SnapshotReader<T> {
    /// Registers a fresh slot on the same cell.
    fn clone(&self) -> Self {
        self.cell.reader()
    }
}

impl<T> SnapshotReader<T> {
    /// Pins the current version: announce the epoch, re-check it, load
    /// the pointer. Lock-free and allocation-free; the loop retries only
    /// when a publish lands inside the two-instruction window.
    pub fn pin(&mut self) -> SnapshotGuard<'_, T> {
        loop {
            let e = self.cell.epoch.load(SeqCst);
            self.slot.store(e, SeqCst);
            if self.cell.epoch.load(SeqCst) == e {
                let ptr = self.cell.current.load(SeqCst);
                return SnapshotGuard {
                    slot: &self.slot,
                    ptr,
                    _value: PhantomData,
                };
            }
        }
    }

    /// Whether this reader reads from `cell`.
    pub fn reads(&self, cell: &Arc<SnapshotCell<T>>) -> bool {
        Arc::ptr_eq(&self.cell, cell)
    }
}

impl<T> Drop for SnapshotReader<T> {
    fn drop(&mut self) {
        // Quiesce the slot so an abandoned reader never blocks
        // reclamation between now and the next registry prune.
        self.slot.store(0, SeqCst);
    }
}

/// A pinned snapshot version. Dereferences to the pinned `&T`; dropping
/// the guard quiesces the reader's slot, allowing the version to be
/// reclaimed after it is superseded.
#[derive(Debug)]
pub struct SnapshotGuard<'a, T> {
    slot: &'a AtomicU64,
    ptr: *const T,
    _value: PhantomData<&'a T>,
}

impl<T> Deref for SnapshotGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: `ptr` was current when pinned and the announced epoch
        // in `slot` (cleared only by our Drop) blocks its reclamation.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for SnapshotGuard<'_, T> {
    fn drop(&mut self) {
        self.slot.store(0, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_sees_latest_publish() {
        let cell = Arc::new(SnapshotCell::new(1u32));
        let mut reader = cell.reader();
        assert_eq!(*reader.pin(), 1);
        cell.publish(2);
        assert_eq!(*reader.pin(), 2);
        assert_eq!(cell.stats().flips, 1);
    }

    #[test]
    fn reclamation_waits_for_active_pin() {
        let cell = Arc::new(SnapshotCell::new(10u32));
        let mut reader = cell.reader();
        let guard = reader.pin();
        cell.publish(20);
        // The pinned first version cannot be freed yet.
        assert_eq!(cell.stats().limbo, 1);
        assert_eq!(cell.stats().deferred_reclaims, 1);
        assert_eq!(*guard, 10);
        drop(guard);
        cell.try_reclaim();
        assert_eq!(cell.stats().limbo, 0);
    }

    #[test]
    fn quiescent_readers_do_not_block() {
        let cell = Arc::new(SnapshotCell::new(0u32));
        let mut reader = cell.reader();
        for i in 1..=5u32 {
            drop(reader.pin());
            cell.publish(i);
        }
        // Every retired version was reclaimable at publish time.
        assert_eq!(cell.stats().limbo, 0);
        assert_eq!(*reader.pin(), 5);
    }

    #[test]
    fn dropped_reader_is_pruned() {
        let cell = Arc::new(SnapshotCell::new(0u32));
        let mut reader = cell.reader();
        let guard = reader.pin();
        drop(guard);
        drop(reader);
        cell.publish(1);
        assert_eq!(cell.stats().limbo, 0);
    }

    #[test]
    fn cloned_reader_gets_own_slot() {
        let cell = Arc::new(SnapshotCell::new(0u32));
        let mut a = cell.reader();
        let mut b = a.clone();
        let ga = a.pin();
        let gb = b.pin();
        assert_eq!(*ga + *gb, 0);
    }
}
