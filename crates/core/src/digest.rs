//! Compact summary digests for anti-entropy comparison.
//!
//! Two brokers that should agree on a summary (a broker's own summary
//! and a neighbor's view of it) compare a 24-byte [`SummaryDigest`]
//! instead of shipping the full summary: a subscription count, an
//! order-independent hash of the subscription-id set, and a structural
//! checksum over every AACS/SACS row. Matching digests mean the views
//! agree; a mismatch triggers a full summary re-send.
//!
//! The structural checksum folds per-row hashes with a commutative
//! wrapping add *within* each attribute, so it is independent of row
//! iteration order — but it is **not** independent of how rows were
//! formed: SACS covering/absorption can split the same id multiset into
//! different rows under exotic insertion orders. Digest-compared
//! summaries must therefore be built by the same insertion discipline;
//! the chaos/recovery layer inserts everywhere in ascending
//! subscription-id order (which equals subscribe order, checkpoint
//! restore order, and oracle rebuild order), making the checksum a
//! sound equality witness there.

use subsum_types::{LowerBound, Num, Pattern, SubscriptionId, UpperBound};

use crate::idlist::IdList;
use crate::summary::BrokerSummary;

/// The 64-bit splitmix finalizer (kept local: `subsum-core` must not
/// depend on the net crate that also defines it).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn hash_id(id: SubscriptionId) -> u64 {
    let packed = ((id.broker.0 as u64) << 32) | id.local.0 as u64;
    mix64(mix64(packed) ^ id.mask.0)
}

#[inline]
fn fold(h: u64, x: u64) -> u64 {
    // Order-sensitive fold (within a row the id list is sorted, so
    // sensitivity is fine and cheaper than another mix per element).
    mix64(h ^ x)
}

fn hash_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        // BOUND: chunks(8) yields at most word.len() == 8 bytes.
        word[..chunk.len()].copy_from_slice(chunk);
        h = fold(h, u64::from_le_bytes(word) ^ chunk.len() as u64);
    }
    fold(h, bytes.len() as u64)
}

fn hash_num(h: u64, n: Num) -> u64 {
    fold(h, n.get().to_bits())
}

fn hash_pattern(mut h: u64, p: &Pattern) -> u64 {
    h = fold(
        h,
        p.anchored_start() as u64 | (p.anchored_end() as u64) << 1,
    );
    h = fold(h, p.segments().len() as u64);
    for seg in p.segments() {
        h = hash_bytes(h, seg.as_bytes());
    }
    h
}

/// Folds the resolved (sorted) subscription ids of one row.
fn hash_row_ids(
    summary: &BrokerSummary,
    dense: &IdList,
    mut h: u64,
    scratch: &mut Vec<SubscriptionId>,
) -> u64 {
    summary.resolve_postings(dense, scratch);
    h = fold(h, scratch.len() as u64);
    for &id in scratch.iter() {
        h = fold(h, hash_id(id));
    }
    h
}

/// A 24-byte equality witness for a [`BrokerSummary`].
///
/// # Example
///
/// ```
/// use subsum_core::BrokerSummary;
/// use subsum_types::{stock_schema, BrokerId, LocalSubId, NumOp, Subscription};
///
/// # fn main() -> Result<(), subsum_types::TypeError> {
/// let schema = stock_schema();
/// let sub = Subscription::builder(&schema)
///     .num("price", NumOp::Lt, 8.70)?
///     .build()?;
/// let mut a = BrokerSummary::new(schema.clone());
/// let mut b = BrokerSummary::new(schema.clone());
/// a.insert(BrokerId(1), LocalSubId(0), &sub);
/// assert_ne!(a.digest(), b.digest());
/// b.insert(BrokerId(1), LocalSubId(0), &sub);
/// assert_eq!(a.digest(), b.digest());
/// assert_eq!(a.digest().to_bytes().len(), subsum_core::SummaryDigest::WIRE_BYTES);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SummaryDigest {
    /// Number of distinct subscriptions summarized.
    pub count: u64,
    /// Order-independent hash of the subscription-id set.
    pub id_hash: u64,
    /// Structural checksum over all AACS/SACS rows (row-order
    /// independent within each attribute).
    pub structure: u64,
}

impl SummaryDigest {
    /// Serialized size of a digest on the wire.
    pub const WIRE_BYTES: usize = 24;

    /// Big-endian serialization: `count · id_hash · structure`.
    pub fn to_bytes(&self) -> [u8; Self::WIRE_BYTES] {
        let mut out = [0u8; Self::WIRE_BYTES];
        // BOUND: constant ranges inside the fixed 24-byte array.
        out[..8].copy_from_slice(&self.count.to_be_bytes());
        out[8..16].copy_from_slice(&self.id_hash.to_be_bytes());
        out[16..].copy_from_slice(&self.structure.to_be_bytes()); // BOUND: ditto
        out
    }

    /// Parses [`Self::to_bytes`] output; `None` on a short/long buffer.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::WIRE_BYTES {
            return None;
        }
        let word = |i: usize| {
            let mut w = [0u8; 8];
            // BOUND: len == WIRE_BYTES (checked above); i is 0, 8 or 16.
            w.copy_from_slice(&bytes[i..i + 8]);
            u64::from_be_bytes(w)
        };
        Some(SummaryDigest {
            count: word(0),
            id_hash: word(8),
            structure: word(16),
        })
    }
}

impl BrokerSummary {
    /// Computes the summary's anti-entropy digest. Linear in the total
    /// row/posting count; no ordering of rows is assumed.
    pub fn digest(&self) -> SummaryDigest {
        let ids = self.subscription_ids();
        let id_hash = ids
            .iter()
            .fold(0u64, |acc, &id| acc.wrapping_add(hash_id(id)));

        let mut scratch = Vec::new();
        let mut structure = 0u64;
        for (attr, _spec) in self.schema().iter() {
            let attr_salt = mix64(0xA77A ^ attr.0 as u64);
            let mut attr_hash = 0u64;
            if let Some(aacs) = self.arith_summary(attr) {
                for row in aacs.ranges() {
                    let mut h = fold(attr_salt, 0x5A4E47);
                    h = match row.interval.lo() {
                        LowerBound::NegInf => fold(h, 0),
                        LowerBound::Incl(n) => hash_num(fold(h, 1), n),
                        LowerBound::Excl(n) => hash_num(fold(h, 2), n),
                    };
                    h = match row.interval.hi() {
                        UpperBound::PosInf => fold(h, 0),
                        UpperBound::Incl(n) => hash_num(fold(h, 1), n),
                        UpperBound::Excl(n) => hash_num(fold(h, 2), n),
                    };
                    attr_hash =
                        attr_hash.wrapping_add(hash_row_ids(self, &row.ids, h, &mut scratch));
                }
                for (num, idlist) in aacs.points() {
                    let h = hash_num(fold(attr_salt, 0x50_49_4E_54), num);
                    attr_hash = attr_hash.wrapping_add(hash_row_ids(self, idlist, h, &mut scratch));
                }
            }
            if let Some(sacs) = self.string_summary(attr) {
                for (pattern, idlist) in sacs.rows() {
                    let h = hash_pattern(fold(attr_salt, 0x504154), &pattern);
                    attr_hash = attr_hash.wrapping_add(hash_row_ids(self, idlist, h, &mut scratch));
                }
            }
            structure = structure.wrapping_add(mix64(attr_salt ^ attr_hash));
        }

        SummaryDigest {
            count: ids.len() as u64,
            id_hash,
            structure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{stock_schema, BrokerId, LocalSubId, NumOp, StrOp, Subscription};

    fn subs() -> (subsum_types::Schema, Vec<Subscription>) {
        let schema = stock_schema();
        let subs = vec![
            Subscription::builder(&schema)
                .num("price", NumOp::Gt, 8.30)
                .unwrap()
                .num("price", NumOp::Lt, 8.70)
                .unwrap()
                .build()
                .unwrap(),
            Subscription::builder(&schema)
                .str_op("symbol", StrOp::Prefix, "OT")
                .unwrap()
                .build()
                .unwrap(),
            Subscription::builder(&schema)
                .num("volume", NumOp::Eq, 1000.0)
                .unwrap()
                .str_op("symbol", StrOp::Eq, "OTE")
                .unwrap()
                .build()
                .unwrap(),
        ];
        (schema, subs)
    }

    #[test]
    fn equal_builds_have_equal_digests() {
        let (schema, subs) = subs();
        let build = || {
            let mut s = BrokerSummary::new(schema.clone());
            for (i, sub) in subs.iter().enumerate() {
                s.insert(BrokerId(3), LocalSubId(i as u32), sub);
            }
            s
        };
        assert_eq!(build().digest(), build().digest());
        assert_eq!(build().digest().count, subs.len() as u64);
    }

    #[test]
    fn any_divergence_changes_the_digest() {
        let (schema, subs) = subs();
        let mut full = BrokerSummary::new(schema.clone());
        let mut partial = BrokerSummary::new(schema.clone());
        for (i, sub) in subs.iter().enumerate() {
            full.insert(BrokerId(3), LocalSubId(i as u32), sub);
            if i + 1 < subs.len() {
                partial.insert(BrokerId(3), LocalSubId(i as u32), sub);
            }
        }
        let (df, dp) = (full.digest(), partial.digest());
        assert_ne!(df, dp);
        assert_ne!(df.count, dp.count);
        assert_ne!(df.id_hash, dp.id_hash);

        // Same count, different owner broker: id hash catches it.
        let mut other = BrokerSummary::new(schema.clone());
        for (i, sub) in subs.iter().enumerate() {
            other.insert(BrokerId(4), LocalSubId(i as u32), sub);
        }
        assert_eq!(other.digest().count, df.count);
        assert_ne!(other.digest().id_hash, df.id_hash);
    }

    #[test]
    fn structure_detects_constraint_drift_with_same_ids() {
        let schema = stock_schema();
        let a_sub = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 5.0)
            .unwrap()
            .build()
            .unwrap();
        let b_sub = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 6.0)
            .unwrap()
            .build()
            .unwrap();
        let mut a = BrokerSummary::new(schema.clone());
        let mut b = BrokerSummary::new(schema.clone());
        a.insert(BrokerId(1), LocalSubId(0), &a_sub);
        b.insert(BrokerId(1), LocalSubId(0), &b_sub);
        let (da, db) = (a.digest(), b.digest());
        assert_eq!(da.count, db.count);
        assert_eq!(da.id_hash, db.id_hash);
        assert_ne!(da.structure, db.structure, "structure must see the bound");
    }

    #[test]
    fn wire_round_trip() {
        let (schema, subs) = subs();
        let mut s = BrokerSummary::new(schema);
        for (i, sub) in subs.iter().enumerate() {
            s.insert(BrokerId(9), LocalSubId(i as u32), sub);
        }
        let d = s.digest();
        let bytes = d.to_bytes();
        assert_eq!(SummaryDigest::from_bytes(&bytes), Some(d));
        assert_eq!(SummaryDigest::from_bytes(&bytes[..23]), None);
    }

    #[test]
    fn merge_of_identical_summary_is_digest_stable() {
        let (schema, subs) = subs();
        let mut s = BrokerSummary::new(schema);
        for (i, sub) in subs.iter().enumerate() {
            s.insert(BrokerId(2), LocalSubId(i as u32), sub);
        }
        let before = s.digest();
        let copy = s.clone();
        s.merge(&copy);
        #[cfg(debug_assertions)]
        s.validate();
        assert_eq!(s.digest(), before, "self-merge must be a digest no-op");
    }
}
