//! Zero-allocation harness for the tracing hot paths.
//!
//! A counting global allocator proves the cost-model claims in
//! `trace.rs`: with the telemetry recorder off (the default),
//!
//! * the **disabled** path — recording against [`TraceCtx::NONE`] or an
//!   unsampled tracer — performs no heap allocation at all, and
//! * the **sampled** path writes into the pre-allocated ring without
//!   allocating either.
//!
//! Everything runs inside one `#[test]` because the allocation counter
//! is process-global: parallel test threads would pollute the deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

use subsum_telemetry::trace::{SpanKind, TraceCtx, TraceId, Tracer};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// The harness only counts; System does the work. `unsafe` is confined
// to this test crate — the library itself forbids unsafe code.
// SAFETY: pure delegation to `System` plus a counter bump; all
// layout/pointer contracts are forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, SeqCst);
        // SAFETY: caller upholds GlobalAlloc's contract; delegated as-is.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds GlobalAlloc's contract; delegated as-is.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, SeqCst);
        // SAFETY: caller upholds GlobalAlloc's contract; delegated as-is.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations performed while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(SeqCst);
    f();
    ALLOCATIONS.load(SeqCst) - before
}

#[test]
fn tracer_record_paths_never_allocate() {
    // Construction allocates (the rings are pre-allocated here, once).
    let never = Tracer::new(4, 256, 0x5EED, u64::MAX);
    let always = Tracer::new(4, 256, 0x5EED, 1);

    // Disabled path: untraced context — the cost of tracing-off code.
    let n = allocations_during(|| {
        for i in 0..10_000u64 {
            let span = always.record_ctx(TraceCtx::NONE, (i % 4) as u16, SpanKind::Route, i);
            assert_eq!(span, 0);
        }
    });
    assert_eq!(n, 0, "untraced context must not allocate");

    // Unsampled path: real trace ids that fail the sampling test — one
    // splitmix64 mix and a compare, nothing else.
    let n = allocations_during(|| {
        for i in 1..10_001u64 {
            always.record(TraceId(i), 0, 99, SpanKind::Route, i); // out of range
            never.record(TraceId(i), 0, (i % 4) as u16, SpanKind::Match, i);
        }
    });
    assert_eq!(n, 0, "unsampled and out-of-range records must not allocate");

    // Sampled path: every record lands in the pre-allocated ring,
    // wrapping (head-drop) included.
    let n = allocations_during(|| {
        for i in 1..2_001u64 {
            let span = always.record(TraceId(i), 0, (i % 4) as u16, SpanKind::Deliver, i);
            assert_ne!(span, 0);
        }
    });
    assert_eq!(n, 0, "the ring write path must not allocate");
    assert!(always.head_drops() > 0, "the rings wrapped during the loop");

    // Snapshots DO allocate (they build a Vec) — sanity-check the
    // counter actually counts, so the zeroes above are meaningful.
    let n = allocations_during(|| {
        std::hint::black_box(always.spans());
    });
    assert!(n > 0, "the harness must observe real allocations");
}
