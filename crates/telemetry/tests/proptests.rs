//! Property-based tests for the telemetry histogram: percentile
//! monotonicity and exact snapshot mergeability.

use proptest::prelude::*;

use subsum_telemetry::{Histogram, Snapshot};

fn record_all(samples: &[u64]) -> Snapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// p50 ≤ p90 ≤ p99 ≤ max: quantile estimates are monotone in the
    /// quantile and bounded by the exact recorded maximum.
    #[test]
    fn percentiles_are_monotone(samples in prop::collection::vec(any::<u64>(), 0..300)) {
        let s = record_all(&samples);
        let p50 = s.percentile(0.50);
        let p90 = s.percentile(0.90);
        let p99 = s.percentile(0.99);
        prop_assert!(p50 <= p90);
        prop_assert!(p90 <= p99);
        prop_assert!(p99 <= s.max);
        if let Some(&true_max) = samples.iter().max() {
            prop_assert_eq!(s.max, true_max);
            prop_assert_eq!(s.min, *samples.iter().min().unwrap());
            prop_assert_eq!(s.count, samples.len() as u64);
        } else {
            prop_assert_eq!(s.percentile(0.99), 0);
        }
    }

    /// Quantile estimates never undershoot the true quantile: the
    /// reported value is an upper bound of the bucket holding the true
    /// rank statistic.
    #[test]
    fn percentiles_bound_true_quantiles(
        mut samples in prop::collection::vec(any::<u64>(), 1..300),
        q in 0.0f64..=1.0,
    ) {
        let s = record_all(&samples);
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let true_quantile = samples[rank - 1];
        prop_assert!(s.percentile(q) >= true_quantile);
    }

    /// Merging two snapshots equals recording the union of their sample
    /// multisets into one histogram — bucket-exactly, including count,
    /// sum, min and max.
    #[test]
    fn snapshot_merge_equals_union(
        a in prop::collection::vec(any::<u64>(), 0..200),
        b in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, record_all(&union));
    }

    /// Merging the empty snapshot is the identity.
    #[test]
    fn merge_with_empty_is_identity(a in prop::collection::vec(any::<u64>(), 0..200)) {
        let mut merged = record_all(&a);
        merged.merge(&Snapshot::empty());
        prop_assert_eq!(merged, record_all(&a));
    }
}
