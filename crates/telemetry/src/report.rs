//! Exportable run reports: one JSON document bundling stage latency
//! distributions, counter and gauge values, and arbitrary embedded
//! structures (e.g. the network-cost metrics of an experiment run).
//!
//! The workspace is built offline without `serde_json`, so this module
//! carries its own minimal JSON value type ([`Json`]) and writer. All
//! report types additionally implement [`serde::Serialize`], so any
//! serde backend can also emit them.

use std::collections::BTreeMap;

use serde::ser::{Serialize, SerializeSeq, Serializer};

use crate::hist::Snapshot;
use crate::recorder::{counters_snapshot, gauges_snapshot, histograms_snapshot};

/// A minimal JSON value for report embedding.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A floating-point number (non-finite values print as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders the value as compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(f) => {
                if f.is_finite() {
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Serialize for Json {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Json::Null => s.serialize_unit(),
            Json::Bool(b) => s.serialize_bool(*b),
            Json::UInt(n) => s.serialize_u64(*n),
            Json::Int(n) => s.serialize_i64(*n),
            Json::Num(f) => s.serialize_f64(*f),
            Json::Str(v) => s.serialize_str(v),
            Json::Arr(items) => {
                let mut seq = s.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Json::Obj(map) => map.serialize(s),
        }
    }
}

/// The latency digest of one named pipeline stage (all times in
/// nanoseconds).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageReport {
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of all span durations.
    pub total_ns: u64,
    /// Mean span duration.
    pub mean_ns: f64,
    /// Median (bucket upper bound, clamped to `max_ns`).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile (absent in pre-trace reports; defaults to 0).
    #[serde(default)]
    pub p999_ns: u64,
    /// Largest recorded span.
    pub max_ns: u64,
    /// Smallest recorded span (0 when no span was recorded).
    pub min_ns: u64,
}

impl StageReport {
    /// Digests a histogram snapshot.
    pub fn from_snapshot(s: &Snapshot) -> StageReport {
        StageReport {
            count: s.count,
            total_ns: s.sum,
            mean_ns: s.mean(),
            p50_ns: s.percentile(0.50),
            p90_ns: s.percentile(0.90),
            p99_ns: s.percentile(0.99),
            p999_ns: s.p999(),
            max_ns: s.max(),
            min_ns: if s.count == 0 { 0 } else { s.min },
        }
    }

    fn to_json_value(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("total_ns", Json::UInt(self.total_ns)),
            ("mean_ns", Json::Num(self.mean_ns)),
            ("p50_ns", Json::UInt(self.p50_ns)),
            ("p90_ns", Json::UInt(self.p90_ns)),
            ("p99_ns", Json::UInt(self.p99_ns)),
            ("p999_ns", Json::UInt(self.p999_ns)),
            ("max_ns", Json::UInt(self.max_ns)),
            ("min_ns", Json::UInt(self.min_ns)),
        ])
    }
}

/// One run's complete telemetry: stage latency digests, counters,
/// gauges and embedded documents, exportable as a single JSON object.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RunReport {
    /// A caller-chosen run label, e.g. `"repro.fig8"`.
    pub name: String,
    /// Per-stage latency digests, keyed by stage name.
    pub stages: BTreeMap<String, StageReport>,
    /// Counter values, keyed by counter name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values, keyed by gauge name.
    pub gauges: BTreeMap<String, i64>,
    /// Embedded documents (e.g. `"net_metrics"`), keyed by label.
    pub embedded: BTreeMap<String, Json>,
}

impl RunReport {
    /// Captures the global recorder's current state under `name`.
    pub fn capture(name: impl Into<String>) -> RunReport {
        RunReport {
            name: name.into(),
            stages: histograms_snapshot()
                .into_iter()
                .map(|(n, s)| (n, StageReport::from_snapshot(&s)))
                .collect(),
            counters: counters_snapshot().into_iter().collect(),
            gauges: gauges_snapshot().into_iter().collect(),
            embedded: BTreeMap::new(),
        }
    }

    /// Attaches an embedded document under `key`.
    pub fn embed(&mut self, key: impl Into<String>, value: Json) {
        self.embedded.insert(key.into(), value);
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            (
                "stages",
                Json::Obj(
                    self.stages
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json_value()))
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
            ("embedded", Json::Obj(self.embedded.clone())),
        ])
        .to_json_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    /// A tiny structural validator: enough JSON grammar to reject
    /// malformed writer output in tests.
    fn validate_json(s: &str) -> Result<(), String> {
        let bytes: Vec<char> = s.chars().collect();
        let mut i = 0usize;
        fn skip_ws(b: &[char], i: &mut usize) {
            while *i < b.len() && b[*i].is_whitespace() {
                *i += 1;
            }
        }
        fn value(b: &[char], i: &mut usize) -> Result<(), String> {
            skip_ws(b, i);
            match b.get(*i) {
                Some('{') => {
                    *i += 1;
                    skip_ws(b, i);
                    if b.get(*i) == Some(&'}') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        string(b, i)?;
                        skip_ws(b, i);
                        if b.get(*i) != Some(&':') {
                            return Err(format!("expected ':' at {i:?}"));
                        }
                        *i += 1;
                        value(b, i)?;
                        skip_ws(b, i);
                        match b.get(*i) {
                            Some(',') => *i += 1,
                            Some('}') => {
                                *i += 1;
                                return Ok(());
                            }
                            other => return Err(format!("expected ',' or '}}', got {other:?}")),
                        }
                    }
                }
                Some('[') => {
                    *i += 1;
                    skip_ws(b, i);
                    if b.get(*i) == Some(&']') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, i)?;
                        skip_ws(b, i);
                        match b.get(*i) {
                            Some(',') => *i += 1,
                            Some(']') => {
                                *i += 1;
                                return Ok(());
                            }
                            other => return Err(format!("expected ',' or ']', got {other:?}")),
                        }
                    }
                }
                Some('"') => string(b, i),
                Some('t') => literal(b, i, "true"),
                Some('f') => literal(b, i, "false"),
                Some('n') => literal(b, i, "null"),
                Some(c) if *c == '-' || c.is_ascii_digit() => {
                    *i += 1;
                    while *i < b.len()
                        && (b[*i].is_ascii_digit()
                            || b[*i] == '.'
                            || b[*i] == 'e'
                            || b[*i] == 'E'
                            || b[*i] == '+'
                            || b[*i] == '-')
                    {
                        *i += 1;
                    }
                    Ok(())
                }
                other => Err(format!("unexpected {other:?}")),
            }
        }
        fn string(b: &[char], i: &mut usize) -> Result<(), String> {
            skip_ws(b, i);
            if b.get(*i) != Some(&'"') {
                return Err(format!("expected string at {i:?}"));
            }
            *i += 1;
            while let Some(&c) = b.get(*i) {
                *i += 1;
                match c {
                    '"' => return Ok(()),
                    '\\' => *i += 1,
                    _ => {}
                }
            }
            Err("unterminated string".to_owned())
        }
        fn literal(b: &[char], i: &mut usize, lit: &str) -> Result<(), String> {
            for c in lit.chars() {
                if b.get(*i) != Some(&c) {
                    return Err(format!("bad literal {lit}"));
                }
                *i += 1;
            }
            Ok(())
        }
        value(&bytes, &mut i)?;
        skip_ws(&bytes, &mut i);
        if i != bytes.len() {
            return Err(format!("trailing garbage at {i}"));
        }
        Ok(())
    }

    #[test]
    fn json_writer_escapes_and_nests() {
        let v = Json::obj([
            ("plain", Json::from("x")),
            ("quote\"backslash\\", Json::from("a\nb\tc\u{1}")),
            (
                "arr",
                Json::Arr(vec![Json::Null, Json::from(true), Json::from(-3i64)]),
            ),
            ("num", Json::from(1.5f64)),
            ("nan", Json::Num(f64::NAN)),
        ]);
        let s = v.to_json_string();
        validate_json(&s).unwrap();
        assert!(s.contains("\\u0001"));
        assert!(s.contains("\\n"));
        assert!(s.contains("null"));
    }

    #[test]
    fn stage_report_digest_is_consistent() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let r = StageReport::from_snapshot(&h.snapshot());
        assert_eq!(r.count, 5);
        assert_eq!(r.total_ns, 1100);
        assert!(r.p50_ns <= r.p90_ns && r.p90_ns <= r.p99_ns && r.p99_ns <= r.max_ns);
        assert!(r.p99_ns <= r.p999_ns && r.p999_ns <= r.max_ns);
        assert_eq!(r.max_ns, 1000);
        assert_eq!(r.min_ns, 10);
    }

    #[test]
    fn run_report_round_trips_to_valid_json() {
        // Raw handles record unconditionally; only the `Stage`/`Count`
        // wrappers consult the global flag (left untouched here so this
        // test cannot race the flag-flipping tests in `recorder`).
        crate::histogram("test.report.stage").record(500);
        crate::counter("test.report.counter").add(7);
        crate::gauge("test.report.gauge").set(-2);
        let mut report = RunReport::capture("unit-test");
        report.embed(
            "net_metrics",
            Json::obj([
                ("messages", Json::from(3u64)),
                (
                    "per_broker",
                    Json::Arr(vec![Json::from(1u64), Json::from(2u64)]),
                ),
            ]),
        );
        let text = report.to_json();
        validate_json(&text).unwrap();
        assert!(text.contains("\"name\":\"unit-test\""));
        assert!(text.contains("\"test.report.stage\""));
        // Value assertions would race with the global-reset unit test in
        // `recorder`; key presence is stable (registration persists).
        assert!(text.contains("\"test.report.counter\""));
        assert!(text.contains("\"net_metrics\""));
    }
}
