//! Central registry of telemetry metric names.
//!
//! Every counter, gauge and stage-histogram name used anywhere in the
//! workspace is declared here as a constant, and call sites refer to the
//! constant instead of repeating the string. `cargo xtask check` enforces
//! this: a bare name literal passed to [`Count::new`](crate::Count),
//! [`Stage::new`](crate::Stage), [`counter`](crate::counter),
//! [`gauge`](crate::gauge) or [`histogram`](crate::histogram) outside
//! test code fails the lint unless its value appears below. The registry
//! makes the stringly-typed namespace greppable and typo-proof: a renamed
//! metric changes in exactly one place.
//!
//! Names are grouped by the subsystem that records them. Test-only
//! metrics use a `test.` prefix and are exempt from the registry (they
//! are scoped to a single test body and never reported).

/// Summary insertion stage (`subsum-core`).
pub const CORE_SUMMARY_INSERT: &str = "core.summary.insert";
/// Summary merge stage (`subsum-core`).
pub const CORE_SUMMARY_MERGE: &str = "core.summary.merge";
/// Event match stage (`subsum-core`).
pub const CORE_SUMMARY_MATCH: &str = "core.summary.match";
/// Matches served by a warm, previously used `MatchScratch`.
pub const MATCH_SCRATCH_REUSE: &str = "match.scratch_reuse";
/// Dense posting-list entries consumed by the epoch-counter kernel.
pub const MATCH_DENSE_HITS: &str = "match.dense_hits";
/// Wholesale intern-table rebuilds (decode and merge paths).
pub const MATCH_INTERN_REBUILDS: &str = "match.intern_rebuilds";
/// Out-of-order inserts that renumbered existing dense postings.
pub const MATCH_INTERN_RENUMBERS: &str = "match.intern_renumbers";
/// Compiled match-plan builds (lazy flat rebuilds plus per-shard
/// snapshot compiles).
pub const MATCH_PLAN_REBUILDS: &str = "match.plan_rebuilds";
/// Plan rows whose posting slices fed the compiled counter kernel.
pub const MATCH_PLAN_PROBE_ROWS: &str = "match.plan_probe_rows";
/// Match-scratch growth events (array resizes to a larger population);
/// steady-state matching against a fixed summary records zero.
pub const MATCH_SCRATCH_GROWS: &str = "match.scratch_grows";
/// SACS wildcard rows actually tested (index-selected plus literal hits).
pub const SACS_INDEX_HITS: &str = "sacs.index_hits";
/// SACS wildcard rows the anchor buckets skipped without testing.
pub const SACS_ROWS_PRUNED: &str = "sacs.rows_pruned";
/// Per-shard kernel invocations of the sharded matcher (fan-out width).
pub const MATCH_SHARD_FANOUT: &str = "match.shard_fanout";
/// Nanoseconds merging per-shard match bitmaps into sorted outputs.
pub const MATCH_SHARD_MERGE_NS: &str = "match.shard_merge_ns";
/// Shard-partition snapshot pointer flips (one per summary mutation).
pub const SUMMARY_SNAPSHOT_FLIPS: &str = "summary.snapshot_flips";
/// Snapshot versions whose reclamation was deferred by an active reader.
pub const SUMMARY_DEFERRED_RECLAIMS: &str = "summary.deferred_reclaims";

/// Subscribe path of the summary broker (`subsum-broker`).
pub const BROKER_SUBSCRIBE: &str = "broker.subscribe";
/// Summary propagation phase of the summary broker.
pub const BROKER_PROPAGATE: &str = "broker.propagate";
/// One propagation round.
pub const PROPAGATE_ROUND: &str = "propagate.round";
/// End-to-end routing of one published event.
pub const PUBLISH_ROUTE: &str = "publish.route";
/// Candidate matching against merged summaries during routing.
pub const PUBLISH_CANDIDATE_MATCH: &str = "publish.candidate_match";
/// Tier-2 owner verification of candidate matches.
pub const PUBLISH_OWNER_VERIFY: &str = "publish.owner_verify";
/// Events published.
pub const PUBLISH_EVENTS: &str = "publish.events";
/// Candidate subscription matches produced by summary matching.
pub const PUBLISH_CANDIDATES: &str = "publish.candidates";
/// Deliveries confirmed by exact verification.
pub const PUBLISH_DELIVERIES: &str = "publish.deliveries";
/// Candidates rejected by exact verification (SACS false positives).
pub const PUBLISH_FALSE_POSITIVES: &str = "publish.false_positives";
/// One runtime mailbox message handled.
pub const RUNTIME_HANDLE_MSG: &str = "runtime.handle_msg";
/// Per-broker mailbox depth gauges: `runtime.mailbox.<broker>`. The only
/// dynamically built family; sites append the broker id to this prefix.
pub const RUNTIME_MAILBOX_PREFIX: &str = "runtime.mailbox.";

/// Subscription flooding phase of the Siena-style baseline.
pub const SIENA_PROPAGATE: &str = "siena.propagate";
/// Event routing of the Siena-style baseline.
pub const SIENA_ROUTE: &str = "siena.route";

/// Chaos-run messages lost (per-link drops + link cuts + crashed
/// receivers).
pub const CHAOS_DROPS: &str = "chaos.drops";
/// Chaos-run duplicate message copies injected.
pub const CHAOS_DUPS: &str = "chaos.dups";
/// Broker crash events executed by chaos runs.
pub const CHAOS_CRASHES: &str = "chaos.crashes";
/// Anti-entropy digest mismatches that triggered a full re-send.
pub const CHAOS_RESYNCS: &str = "chaos.resyncs";
/// Bytes spent on anti-entropy digest advertisements.
pub const CHAOS_DIGEST_BYTES: &str = "chaos.digest_bytes";
/// Bytes spent on full summary updates during chaos runs.
pub const CHAOS_FULL_BYTES: &str = "chaos.full_summary_bytes";

/// Frames written to peer or client sockets (`subsum-transport`).
pub const TRANSPORT_FRAMES_TX: &str = "transport.frames_tx";
/// Frames decoded off peer or client sockets.
pub const TRANSPORT_FRAMES_RX: &str = "transport.frames_rx";
/// Bytes written to sockets (frame headers included).
pub const TRANSPORT_BYTES_TX: &str = "transport.bytes_tx";
/// Bytes read from sockets.
pub const TRANSPORT_BYTES_RX: &str = "transport.bytes_rx";
/// Connections dropped for unframeable or unparseable input.
pub const TRANSPORT_DECODE_ERRORS: &str = "transport.decode_errors";
/// Peer dials beyond each link's first (epoch re-handshakes).
pub const TRANSPORT_RECONNECTS: &str = "transport.reconnects";
/// Handshake digest mismatches that triggered a summary pull.
pub const TRANSPORT_RESYNCS: &str = "transport.resyncs";
/// Sends rejected (or, under the blocking policy, stalled) because a
/// peer's bounded outbound mailbox was full.
pub const NET_MAILBOX_FULL: &str = "net.mailbox_full";
/// Client publishes acknowledged as fully accepted.
pub const PUBLISH_ACKED: &str = "publish.acked";
/// Client publishes acknowledged as rejected by backpressure.
pub const PUBLISH_REJECTED: &str = "publish.rejected";

/// Spans recorded into flight recorders by the causal tracer.
pub const TRACE_SPANS: &str = "trace.spans";
/// Flight-recorder head-drops (oldest span overwritten by a new one).
pub const TRACE_HEAD_DROPS: &str = "trace.head_drops";
/// Trace ids selected by the deterministic 1-in-N sampler.
pub const TRACE_SAMPLED: &str = "trace.sampled";

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_distinct() {
        let all = [
            super::CORE_SUMMARY_INSERT,
            super::CORE_SUMMARY_MERGE,
            super::CORE_SUMMARY_MATCH,
            super::MATCH_SCRATCH_REUSE,
            super::MATCH_DENSE_HITS,
            super::MATCH_INTERN_REBUILDS,
            super::MATCH_INTERN_RENUMBERS,
            super::MATCH_PLAN_REBUILDS,
            super::MATCH_PLAN_PROBE_ROWS,
            super::MATCH_SCRATCH_GROWS,
            super::SACS_INDEX_HITS,
            super::SACS_ROWS_PRUNED,
            super::MATCH_SHARD_FANOUT,
            super::MATCH_SHARD_MERGE_NS,
            super::SUMMARY_SNAPSHOT_FLIPS,
            super::SUMMARY_DEFERRED_RECLAIMS,
            super::BROKER_SUBSCRIBE,
            super::BROKER_PROPAGATE,
            super::PROPAGATE_ROUND,
            super::PUBLISH_ROUTE,
            super::PUBLISH_CANDIDATE_MATCH,
            super::PUBLISH_OWNER_VERIFY,
            super::PUBLISH_EVENTS,
            super::PUBLISH_CANDIDATES,
            super::PUBLISH_DELIVERIES,
            super::PUBLISH_FALSE_POSITIVES,
            super::RUNTIME_HANDLE_MSG,
            super::RUNTIME_MAILBOX_PREFIX,
            super::SIENA_PROPAGATE,
            super::SIENA_ROUTE,
            super::CHAOS_DROPS,
            super::CHAOS_DUPS,
            super::CHAOS_CRASHES,
            super::CHAOS_RESYNCS,
            super::CHAOS_DIGEST_BYTES,
            super::CHAOS_FULL_BYTES,
            super::TRANSPORT_FRAMES_TX,
            super::TRANSPORT_FRAMES_RX,
            super::TRANSPORT_BYTES_TX,
            super::TRANSPORT_BYTES_RX,
            super::TRANSPORT_DECODE_ERRORS,
            super::TRANSPORT_RECONNECTS,
            super::TRANSPORT_RESYNCS,
            super::NET_MAILBOX_FULL,
            super::PUBLISH_ACKED,
            super::PUBLISH_REJECTED,
            super::TRACE_SPANS,
            super::TRACE_HEAD_DROPS,
            super::TRACE_SAMPLED,
        ];
        let mut seen = std::collections::HashSet::new();
        for name in all {
            assert!(seen.insert(name), "duplicate metric name {name:?}");
        }
    }
}
