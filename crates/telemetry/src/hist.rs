//! Log-bucketed latency histograms with lock-free recording.
//!
//! A [`Histogram`] keeps one bucket per power of two — bucket *i* counts
//! samples whose bit length is *i*, i.e. values in `[2^(i-1), 2^i − 1]`
//! (bucket 0 holds exact zeros). Recording is a handful of relaxed
//! atomic operations; reading produces an immutable [`Snapshot`] from
//! which p50/p90/p99/max are derived. Snapshots over the same bucket
//! layout merge exactly: merging two snapshots yields the snapshot one
//! would have obtained by recording the union of their samples into a
//! single histogram.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Number of buckets: one per possible bit length of a `u64` (0..=64).
pub const NUM_BUCKETS: usize = 65;

/// The largest value bucket `i` can hold (its percentile representative).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The bucket index for a sample: its bit length.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// A concurrent log-bucketed histogram of `u64` samples (nanoseconds on
/// the instrumented paths). All operations use relaxed atomics; there
/// are no locks anywhere.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// The number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets every bucket and statistic to the empty state.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
        }
    }
}

/// An immutable, mergeable histogram snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Per-bucket sample counts ([`NUM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Largest sample, 0 when empty.
    pub max: u64,
    /// Smallest sample, `u64::MAX` when empty.
    pub min: u64,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Snapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Folds `other` into `self`. Merging equals recording the union of
    /// the two sample multisets into one histogram.
    pub fn merge(&mut self, other: &Snapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// The `q`-quantile (`q` in `[0, 1]`), estimated as the upper bound
    /// of the bucket containing the target rank, clamped to the recorded
    /// maximum. Monotone in `q` and never exceeds [`Snapshot::max`];
    /// returns 0 for an empty snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The 99.9th percentile — [`Snapshot::percentile`] at `q = 0.999`.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// The largest recorded sample (accessor form of the `max` field;
    /// 0 when empty). `percentile(1.0)` equals this by construction.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The arithmetic mean, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_snapshot_is_inert() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, Snapshot::empty());
    }

    #[test]
    fn percentiles_track_samples() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100);
        assert_eq!(s.min, 1);
        let p50 = s.percentile(0.5);
        let p90 = s.percentile(0.9);
        let p99 = s.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= s.max);
        // p50 of 1..=100 lands in the bucket of rank 50 (value 50,
        // bucket upper 63).
        assert_eq!(p50, 63);
        assert_eq!((s.mean() * 2.0).round() as u64, 101);
    }

    #[test]
    fn percentile_one_returns_top_recorded_value_not_bucket_overshoot() {
        // Regression: the log-bucket upper bound of the last occupied
        // bucket can exceed the true maximum (e.g. 100 lives in the
        // bucket whose upper bound is 127). percentile(1.0) must clamp
        // to the recorded max, not the bucket bound.
        let h = Histogram::new();
        for v in [3u64, 40, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(1.0), 100);
        assert_eq!(s.percentile(1.0), s.max());
        assert_eq!(s.max(), s.max);
        // p999 sits between p99 and max and never overshoots either.
        assert!(s.percentile(0.99) <= s.p999());
        assert!(s.p999() <= s.max());
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.snapshot(), Snapshot::empty());
    }

    #[test]
    fn merge_equals_union() {
        let a_samples = [1u64, 5, 9, 1000];
        let b_samples = [0u64, 2, 2, 70_000, u64::MAX];
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hu = Histogram::new();
        for &v in &a_samples {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b_samples {
            hb.record(v);
            hu.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        assert_eq!(merged, hu.snapshot());
    }
}
