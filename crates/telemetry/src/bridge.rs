//! Span forwarding for the `tracing` feature.
//!
//! When the `tracing` cargo feature is enabled, every closed span
//! (stage name plus duration in nanoseconds) is forwarded to a
//! process-global observer callback in addition to the stage histogram.
//! This is the integration point for the `tracing` ecosystem: a binary
//! that depends on the `tracing` crate installs an observer that emits
//! `tracing::event!`s (or spans) from the callback. The workspace build
//! environment is offline, so this crate deliberately does not link the
//! `tracing` crate itself — the bridge keeps the dependency on the
//! consumer's side while the instrumented crates stay dependency-free.
//!
//! ```
//! fn stdout_observer(stage: &'static str, nanos: u64) {
//!     // with the `tracing` crate available, this body would be e.g.
//!     // tracing::trace!(target: "subsum", stage, nanos);
//!     let _ = (stage, nanos);
//! }
//! subsum_telemetry::bridge::set_span_observer(stdout_observer);
//! ```

use std::sync::OnceLock;

/// A span observer: called once per closed span with the stage name and
/// the span duration in nanoseconds. Must be cheap and non-blocking —
/// it runs on the instrumented thread.
pub type SpanObserver = fn(stage: &'static str, nanos: u64);

static OBSERVER: OnceLock<SpanObserver> = OnceLock::new();

/// Installs the process-global span observer. Returns `false` if one
/// was already installed (the first installation wins).
pub fn set_span_observer(observer: SpanObserver) -> bool {
    OBSERVER.set(observer).is_ok()
}

/// Forwards one closed span to the observer, if any.
pub(crate) fn emit(stage: &'static str, nanos: u64) {
    if let Some(observer) = OBSERVER.get() {
        observer(stage, nanos);
    }
}
