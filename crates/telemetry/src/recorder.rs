//! The global recorder: a process-wide registry of named counters,
//! gauges and stage histograms behind one enable flag.
//!
//! Design constraints (the instrumented paths are the broker hot paths):
//!
//! * **Disabled is free.** Every instrumentation entry point first loads
//!   one relaxed [`AtomicBool`]; when the recorder is off nothing else
//!   happens — no clock reads, no lookups, no locks.
//! * **Enabled is lock-free on the event path.** Call sites cache their
//!   metric handle in a per-site [`OnceLock`] ([`Stage`], [`Count`]);
//!   the registry mutex is only taken on the first hit of each site
//!   (and by [`reset`]/snapshot readers, which are off the event path).
//!
//! Handles are interned with `Box::leak`, so they are `&'static` and
//! survive [`reset`] (which zeroes values in place).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::hist::{Histogram, Snapshot};

/// A monotonically increasing event counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous signed measurement, e.g. a queue depth.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the current value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the current value by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the global recorder is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the global recorder on or off. Off by default, so benchmarks
/// and production paths pay only one relaxed load per instrumentation
/// site.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn intern<T>(
    map: &Mutex<BTreeMap<&'static str, &'static T>>,
    name: &str,
    make: fn() -> T,
) -> &'static T {
    // Recover from poisoning instead of panicking on the hot path: the
    // registry only ever gains leaked entries, so a map abandoned
    // mid-insert is still structurally sound.
    let mut map = match map.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(&existing) = map.get(name) {
        return existing;
    }
    let leaked_name: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let handle: &'static T = Box::leak(Box::new(make()));
    map.insert(leaked_name, handle);
    handle
}

/// The interned counter named `name`, registering it on first use.
pub fn counter(name: &str) -> &'static Counter {
    intern(&registry().counters, name, Counter::new)
}

/// The interned gauge named `name`, registering it on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    intern(&registry().gauges, name, Gauge::new)
}

/// The interned stage histogram named `name`, registering it on first
/// use.
pub fn histogram(name: &str) -> &'static Histogram {
    intern(&registry().histograms, name, Histogram::new)
}

/// Zeroes every registered counter, gauge and histogram in place.
/// Handles stay valid.
pub fn reset() {
    let reg = registry();
    for c in reg
        .counters
        .lock()
        .expect("telemetry registry poisoned")
        .values()
    {
        c.reset();
    }
    for g in reg
        .gauges
        .lock()
        .expect("telemetry registry poisoned")
        .values()
    {
        g.reset();
    }
    for h in reg
        .histograms
        .lock()
        .expect("telemetry registry poisoned")
        .values()
    {
        h.reset();
    }
}

/// Name-sorted snapshot of every registered counter.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    registry()
        .counters
        .lock()
        .expect("telemetry registry poisoned")
        .iter()
        .map(|(name, c)| (name.to_string(), c.get()))
        .collect()
}

/// Name-sorted snapshot of every registered gauge.
pub fn gauges_snapshot() -> Vec<(String, i64)> {
    registry()
        .gauges
        .lock()
        .expect("telemetry registry poisoned")
        .iter()
        .map(|(name, g)| (name.to_string(), g.get()))
        .collect()
}

/// Name-sorted snapshot of every registered stage histogram.
pub fn histograms_snapshot() -> Vec<(String, Snapshot)> {
    registry()
        .histograms
        .lock()
        .expect("telemetry registry poisoned")
        .iter()
        .map(|(name, h)| (name.to_string(), h.snapshot()))
        .collect()
}

/// A named pipeline stage: a call-site-cached handle to a stage
/// histogram, usable from a `static`.
///
/// ```
/// static STAGE_DECODE: subsum_telemetry::Stage =
///     subsum_telemetry::Stage::new("wire.decode");
///
/// fn decode() {
///     let _span = STAGE_DECODE.start(); // records elapsed ns on drop
///     // ... stage body ...
/// }
/// ```
#[derive(Debug)]
pub struct Stage {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl Stage {
    /// Declares a stage. `const`, so stages live in `static`s.
    pub const fn new(name: &'static str) -> Self {
        Stage {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The stage name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Starts an RAII span over this stage. When the recorder is
    /// disabled this reads one atomic and returns an inert timer (no
    /// clock read, no registry access).
    #[inline]
    pub fn start(&self) -> SpanTimer {
        if !enabled() {
            return SpanTimer { inner: None };
        }
        let hist = *self.cell.get_or_init(|| histogram(self.name));
        SpanTimer {
            inner: Some((self.name, hist, Instant::now())),
        }
    }
}

/// A named counter with a call-site-cached handle, usable from a
/// `static`. Recording is a no-op while the recorder is disabled.
#[derive(Debug)]
pub struct Count {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl Count {
    /// Declares a counter. `const`, so counts live in `static`s.
    pub const fn new(name: &'static str) -> Self {
        Count {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The counter name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` if the recorder is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.cell.get_or_init(|| counter(self.name)).add(n);
    }

    /// Adds one if the recorder is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// An RAII span: created by [`Stage::start`], records the elapsed
/// nanoseconds into the stage histogram when dropped.
#[derive(Debug)]
#[must_use = "a span timer records its stage latency when dropped"]
pub struct SpanTimer {
    inner: Option<(&'static str, &'static Histogram, Instant)>,
}

impl SpanTimer {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((name, hist, start)) = self.inner.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(nanos);
            #[cfg(feature = "tracing")]
            crate::bridge::emit(name, nanos);
            #[cfg(not(feature = "tracing"))]
            let _ = name;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global enable flag.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_and_gauges_register_once() {
        let _g = guard();
        let a = counter("test.recorder.counter");
        let b = counter("test.recorder.counter");
        assert!(std::ptr::eq(a, b));
        a.reset();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = gauge("test.recorder.gauge");
        g.set(-4);
        g.add(1);
        assert_eq!(gauge("test.recorder.gauge").get(), -3);
        assert!(counters_snapshot()
            .iter()
            .any(|(n, v)| n == "test.recorder.counter" && *v == 3));
        assert!(gauges_snapshot()
            .iter()
            .any(|(n, v)| n == "test.recorder.gauge" && *v == -3));
    }

    #[test]
    fn stage_records_only_when_enabled() {
        let _g = guard();
        static STAGE: Stage = Stage::new("test.recorder.stage");
        set_enabled(false);
        STAGE.start().finish();
        // Disabled spans never even register the histogram; look it up
        // explicitly to get a stable baseline.
        let hist = histogram("test.recorder.stage");
        hist.reset();
        STAGE.start().finish();
        assert_eq!(hist.count(), 0);
        set_enabled(true);
        STAGE.start().finish();
        {
            let _span = STAGE.start();
            std::hint::black_box(0u64);
        }
        set_enabled(false);
        assert_eq!(hist.count(), 2);
        assert!(hist.snapshot().percentile(0.99) <= hist.snapshot().max);
    }

    #[test]
    fn count_is_gated_and_reset_zeroes() {
        let _g = guard();
        static EVENTS: Count = Count::new("test.recorder.count");
        set_enabled(false);
        EVENTS.inc();
        set_enabled(true);
        let c = counter("test.recorder.count");
        c.reset();
        EVENTS.add(5);
        set_enabled(false);
        assert_eq!(c.get(), 5);
        reset();
        assert_eq!(c.get(), 0);
    }
}
