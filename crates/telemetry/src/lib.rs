//! # subsum-telemetry — pipeline telemetry for the broker stack
//!
//! The paper's evaluation (§5) measures only aggregate network costs;
//! this crate adds the *time* dimension the ROADMAP's production goals
//! need: where does a publish spend its nanoseconds — summary matching,
//! BROCLI pruning, or owner verification — and how many SACS false
//! positives did tier-2 verification burn?
//!
//! Four pieces:
//!
//! * cheap **counters** and **gauges** ([`Counter`], [`Gauge`], and the
//!   call-site-cached [`Count`]) — plain relaxed atomics;
//! * **log-bucketed latency histograms** ([`Histogram`]) with
//!   p50/p90/p99/max digests and exactly mergeable [`Snapshot`]s;
//! * **RAII span timers** for named pipeline stages ([`Stage`],
//!   [`SpanTimer`]);
//! * a serializable [`RunReport`] bundling stage timings, counters and
//!   embedded documents (e.g. `NetMetrics`) into one JSON object;
//! * **causal tracing** ([`trace`]): per-message trace ids, hop-scoped
//!   span records, per-broker ring-buffer flight recorders with
//!   deterministic 1-in-N sampling, and Chrome `trace_event` export.
//!
//! # Cost model
//!
//! The global recorder is **disabled by default**. Every instrumented
//! site first loads one relaxed atomic; when disabled nothing else
//! happens — no clock reads, no allocation, no locks — so benchmark
//! and production numbers stay honest. When enabled, recording is
//! lock-free: handles are cached per call site and all state is plain
//! relaxed atomics.
//!
//! # Example
//!
//! ```
//! use subsum_telemetry as telemetry;
//!
//! static STAGE_PARSE: telemetry::Stage = telemetry::Stage::new("doc.parse");
//! static DOCS: telemetry::Count = telemetry::Count::new("doc.count");
//!
//! telemetry::set_enabled(true);
//! for _ in 0..10 {
//!     let _span = STAGE_PARSE.start(); // records ns on drop
//!     DOCS.inc();
//! }
//! telemetry::set_enabled(false);
//!
//! let report = telemetry::RunReport::capture("example");
//! let stage = &report.stages["doc.parse"];
//! assert_eq!(stage.count, 10);
//! assert!(stage.p50_ns <= stage.p99_ns);
//! assert!(report.to_json().starts_with('{'));
//! # telemetry::reset();
//! ```
//!
//! # The `tracing` feature
//!
//! With the `tracing` cargo feature enabled, every closed span is also
//! forwarded to a process-global observer callback ([`bridge`]) — the
//! hook where a `tracing`-ecosystem subscriber attaches. The feature
//! adds no dependency and is off by default.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

#[cfg(feature = "tracing")]
pub mod bridge;
mod hist;
pub mod names;
mod recorder;
mod report;
pub mod trace;

pub use hist::{Histogram, Snapshot, NUM_BUCKETS};
pub use recorder::{
    counter, counters_snapshot, enabled, gauge, gauges_snapshot, histogram, histograms_snapshot,
    reset, set_enabled, Count, Counter, Gauge, SpanTimer, Stage,
};
pub use report::{Json, RunReport, StageReport};
