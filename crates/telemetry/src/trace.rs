//! Causal event tracing: trace ids, hop-scoped span records, and
//! per-broker fixed-capacity **flight recorders**.
//!
//! Every published event and every control message can carry a
//! [`TraceId`]; each hop it takes through the overlay appends a
//! [`SpanRecord`] (broker, [`SpanKind`], deterministic sim-clock
//! timestamp, parent span) to the flight recorder of the broker where
//! the hop happened. The recorder is a lock-free ring buffer: when it
//! fills, the *oldest* spans are overwritten (head-drop) and the drop is
//! accounted, so a crash post-mortem always shows the most recent
//! activity.
//!
//! # Sampling determinism
//!
//! Tracing every message would distort the very latencies being
//! measured, so the [`Tracer`] samples **1-in-N trace ids**. The
//! decision is a pure function of `(seed, trace id)` through the
//! splitmix64 finalizer — the same discipline `subsum-net::FaultPlan`
//! uses for fault decisions — so a run replays exactly under a fixed
//! seed: two identical runs sample identical traces and export
//! byte-identical Chrome traces.
//!
//! # Cost model
//!
//! Recording follows the recorder-wide rules: the unsampled path is one
//! `mix64` of two registers and a compare — no clock read, no lock, no
//! allocation — and the sampled path writes four relaxed atomics into a
//! pre-allocated ring. Neither path allocates; the zero-alloc harness
//! (`tests/zero_alloc.rs`) enforces this.
//!
//! # Export
//!
//! [`Tracer::chrome_trace_string`] renders the Chrome `trace_event` JSON
//! format: load the file in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing` to see per-broker tracks of every recorded hop.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::names;
use crate::recorder::Count;
use crate::report::Json;

static CNT_SPANS: Count = Count::new(names::TRACE_SPANS);
static CNT_HEAD_DROPS: Count = Count::new(names::TRACE_HEAD_DROPS);
static CNT_SAMPLED: Count = Count::new(names::TRACE_SAMPLED);

/// The 64-bit splitmix finalizer (same mixer as `subsum-net::mix64`,
/// duplicated here because this crate must stay dependency-free).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Identity of one causal trace: a published event or an originated
/// control message and everything it transitively caused.
///
/// `TraceId(0)` is reserved as [`TraceId::NONE`] — "untraced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The untraced sentinel: spans with this id are never recorded.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this is a real trace (not the sentinel).
    #[inline]
    pub fn is_traced(self) -> bool {
        self.0 != 0
    }
}

/// Trace context carried on in-flight messages: the trace the message
/// belongs to plus the span that caused it.
///
/// This is **runtime metadata only** — it rides on the in-memory
/// envelope, never on the wire, so tracing cannot change encoded byte
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceCtx {
    /// The causal trace this message belongs to.
    pub trace: TraceId,
    /// The span id of the hop that produced this message (0 = root).
    pub parent: u32,
}

impl TraceCtx {
    /// Untraced context: attached to messages when tracing is off.
    pub const NONE: TraceCtx = TraceCtx {
        trace: TraceId::NONE,
        parent: 0,
    };
}

/// What happened at one hop of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Message accepted onto a link by the network layer.
    Enqueue = 0,
    /// Message handed to the receiving broker.
    Dequeue = 1,
    /// Event examined by a broker on the routing path.
    Route = 2,
    /// Candidate matching against a merged summary.
    Match = 3,
    /// Tier-2 exact verification at the owning broker.
    OwnerVerify = 4,
    /// Confirmed delivery to a subscriber's broker.
    Deliver = 5,
    /// Message lost (link fault, cut link, or partition).
    Drop = 6,
    /// Duplicate copy injected by the fault plan.
    Dup = 7,
    /// Message lost because the receiving broker was down.
    CrashDrop = 8,
}

impl SpanKind {
    /// Stable lowercase name, used by the Chrome trace export.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Enqueue => "enqueue",
            SpanKind::Dequeue => "dequeue",
            SpanKind::Route => "route",
            SpanKind::Match => "match",
            SpanKind::OwnerVerify => "owner_verify",
            SpanKind::Deliver => "deliver",
            SpanKind::Drop => "drop",
            SpanKind::Dup => "dup",
            SpanKind::CrashDrop => "crash_drop",
        }
    }

    fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::Enqueue,
            1 => SpanKind::Dequeue,
            2 => SpanKind::Route,
            3 => SpanKind::Match,
            4 => SpanKind::OwnerVerify,
            5 => SpanKind::Deliver,
            6 => SpanKind::Drop,
            7 => SpanKind::Dup,
            8 => SpanKind::CrashDrop,
            _ => return None,
        })
    }
}

/// One recorded hop of a causal trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id (unique per [`Tracer`], starting at 1).
    pub span: u32,
    /// The id of the causally preceding span (0 = trace root).
    pub parent: u32,
    /// The broker where the hop happened.
    pub broker: u16,
    /// What the hop did.
    pub kind: SpanKind,
    /// Deterministic sim-clock timestamp (ticks).
    pub at: u64,
}

/// A fixed-capacity lock-free ring buffer of [`SpanRecord`]s.
///
/// Each slot is four relaxed `AtomicU64` words; a monotone write cursor
/// wraps modulo the capacity, so once full the recorder **head-drops**:
/// the oldest span is overwritten and [`FlightRecorder::dropped`]
/// grows. Pushing never allocates and never blocks.
///
/// [`FlightRecorder::snapshot`] decodes the live window oldest-first.
/// It is designed for quiescent points (end of a deterministic run, or
/// the instant a simulated crash fires); a snapshot raced against
/// concurrent pushes may observe torn slots, which are skipped rather
/// than misdecoded.
#[derive(Debug)]
pub struct FlightRecorder {
    words: Vec<AtomicU64>,
    capacity: usize,
    written: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder holding up to `capacity` spans (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        let mut words = Vec::with_capacity(capacity * 4);
        for _ in 0..capacity * 4 {
            words.push(AtomicU64::new(0));
        }
        FlightRecorder {
            words,
            capacity,
            written: AtomicU64::new(0),
        }
    }

    /// The fixed slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total spans ever pushed (including overwritten ones).
    pub fn written(&self) -> u64 {
        self.written.load(Relaxed)
    }

    /// Spans lost to head-drop (oldest-first overwrites).
    pub fn dropped(&self) -> u64 {
        self.written().saturating_sub(self.capacity as u64)
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.written().min(self.capacity as u64) as usize
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.written() == 0
    }

    /// Pushes one span, overwriting the oldest slot when full. Returns
    /// `true` if an old span was overwritten. Never allocates.
    pub fn push(&self, rec: SpanRecord) -> bool {
        let n = self.written.fetch_add(1, Relaxed);
        let slot = (n % self.capacity as u64) as usize * 4;
        self.words[slot].store(rec.trace.0, Relaxed);
        self.words[slot + 1].store(rec.at, Relaxed);
        self.words[slot + 2].store(u64::from(rec.span) << 32 | u64::from(rec.parent), Relaxed);
        self.words[slot + 3].store(u64::from(rec.broker) << 8 | rec.kind as u64, Relaxed);
        n >= self.capacity as u64
    }

    /// Decodes the live window, oldest span first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let written = self.written();
        let len = written.min(self.capacity as u64) as usize;
        let start = if written <= self.capacity as u64 {
            0
        } else {
            (written % self.capacity as u64) as usize
        };
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let slot = (start + i) % self.capacity * 4;
            let trace = TraceId(self.words[slot].load(Relaxed));
            let at = self.words[slot + 1].load(Relaxed);
            let ids = self.words[slot + 2].load(Relaxed);
            let meta = self.words[slot + 3].load(Relaxed);
            let Some(kind) = SpanKind::from_u8((meta & 0xFF) as u8) else {
                continue; // torn slot under a racing push
            };
            if !trace.is_traced() {
                continue; // slot not fully written yet
            }
            out.push(SpanRecord {
                trace,
                span: (ids >> 32) as u32,
                parent: (ids & 0xFFFF_FFFF) as u32,
                broker: (meta >> 8) as u16,
                kind,
                at,
            });
        }
        out
    }
}

/// The tracing front-end: allocates trace/span ids, makes the
/// deterministic sampling decision, and fans spans out to per-broker
/// [`FlightRecorder`]s.
///
/// A `Tracer` is shared behind an `Arc` by the network and broker
/// layers. When no tracer is attached at all, the product code pays a
/// single `Option` test per message — that is the "disabled" path the
/// overhead benchmark measures.
#[derive(Debug)]
pub struct Tracer {
    seed: u64,
    sample_one_in: u64,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    recorders: Vec<FlightRecorder>,
}

impl Tracer {
    /// Creates a tracer for `brokers` brokers, each with a recorder of
    /// `capacity` spans, sampling one in `sample_one_in` trace ids
    /// (clamped to ≥ 1; 1 = trace everything) under `seed`.
    pub fn new(brokers: usize, capacity: usize, seed: u64, sample_one_in: u64) -> Tracer {
        Tracer {
            seed,
            sample_one_in: sample_one_in.max(1),
            next_trace: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
            recorders: (0..brokers)
                .map(|_| FlightRecorder::new(capacity))
                .collect(),
        }
    }

    /// The sampling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The sampling rate: one in this many trace ids is recorded.
    pub fn sample_one_in(&self) -> u64 {
        self.sample_one_in
    }

    /// Deterministic sampling decision for a trace id: a pure function
    /// of `(seed, id)`, so replays under a fixed seed sample the exact
    /// same traces. [`TraceId::NONE`] is never sampled.
    #[inline]
    pub fn sampled(&self, trace: TraceId) -> bool {
        trace.is_traced() && mix64(self.seed ^ trace.0) % self.sample_one_in == 0
    }

    /// Allocates a fresh trace id (ids start at 1; 0 stays the
    /// untraced sentinel).
    pub fn new_trace(&self) -> TraceId {
        let id = TraceId(self.next_trace.fetch_add(1, Relaxed) + 1);
        if self.sampled(id) {
            CNT_SAMPLED.add(1);
        }
        id
    }

    /// Allocates a fresh root trace context for an originated message.
    pub fn new_root(&self) -> TraceCtx {
        TraceCtx {
            trace: self.new_trace(),
            parent: 0,
        }
    }

    /// Records one hop if its trace is sampled and `broker` is in
    /// range. Returns the new span id, or 0 when nothing was recorded.
    /// Never allocates on either path.
    pub fn record(&self, trace: TraceId, parent: u32, broker: u16, kind: SpanKind, at: u64) -> u32 {
        if !self.sampled(trace) {
            return 0;
        }
        let Some(rec) = self.recorders.get(broker as usize) else {
            return 0;
        };
        let span = (self.next_span.fetch_add(1, Relaxed) + 1) as u32;
        let overwrote = rec.push(SpanRecord {
            trace,
            span,
            parent,
            broker,
            kind,
            at,
        });
        CNT_SPANS.add(1);
        if overwrote {
            CNT_HEAD_DROPS.add(1);
        }
        span
    }

    /// [`Tracer::record`] with the trace and parent taken from a
    /// message's [`TraceCtx`].
    pub fn record_ctx(&self, ctx: TraceCtx, broker: u16, kind: SpanKind, at: u64) -> u32 {
        self.record(ctx.trace, ctx.parent, broker, kind, at)
    }

    /// The flight recorder of one broker.
    pub fn recorder(&self, broker: u16) -> Option<&FlightRecorder> {
        self.recorders.get(broker as usize)
    }

    /// Number of per-broker recorders.
    pub fn brokers(&self) -> usize {
        self.recorders.len()
    }

    /// Total spans lost to head-drop across all recorders.
    pub fn head_drops(&self) -> u64 {
        self.recorders.iter().map(FlightRecorder::dropped).sum()
    }

    /// Every live span, grouped by broker (ascending), oldest-first
    /// within each broker — the deterministic export order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for rec in &self.recorders {
            out.extend(rec.snapshot());
        }
        out
    }

    /// Renders the recorded spans as Chrome `trace_event` JSON.
    pub fn chrome_trace(&self) -> Json {
        chrome_trace(&self.spans())
    }

    /// [`Tracer::chrome_trace`] serialized to a string. The output is a
    /// pure function of the recorded spans, so two identical seeded
    /// runs produce byte-identical files.
    pub fn chrome_trace_string(&self) -> String {
        self.chrome_trace().to_json_string()
    }
}

/// Builds a Chrome `trace_event` JSON document from span records.
///
/// Each span becomes an instant event: `pid` is the broker (one track
/// per broker in Perfetto), `tid` is the trace id (hops of one event
/// line up on one row), `ts` is the sim-clock tick, and `args` carries
/// the span/parent ids for causal reconstruction.
pub fn chrome_trace(spans: &[SpanRecord]) -> Json {
    let events: Vec<Json> = spans
        .iter()
        .map(|s| {
            Json::obj([
                ("name", Json::Str(s.kind.as_str().to_string())),
                ("ph", Json::Str("i".to_string())),
                ("s", Json::Str("t".to_string())),
                ("ts", Json::UInt(s.at)),
                ("pid", Json::UInt(u64::from(s.broker))),
                ("tid", Json::UInt(s.trace.0)),
                (
                    "args",
                    Json::obj([
                        ("span", Json::UInt(u64::from(s.span))),
                        ("parent", Json::UInt(u64::from(s.parent))),
                    ]),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("displayTimeUnit", Json::Str("ms".to_string())),
        ("traceEvents", Json::Arr(events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, span: u32, at: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            span,
            parent: span.saturating_sub(1),
            broker: 3,
            kind: SpanKind::Route,
            at,
        }
    }

    #[test]
    fn ring_keeps_newest_and_accounts_head_drops() {
        let rec = FlightRecorder::new(4);
        assert!(rec.is_empty());
        for i in 0..6u64 {
            rec.push(span(1, i as u32 + 1, i));
        }
        assert_eq!(rec.written(), 6);
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 2);
        let snap = rec.snapshot();
        // Oldest-first window over the newest four pushes.
        assert_eq!(snap.iter().map(|s| s.at).collect::<Vec<_>>(), [2, 3, 4, 5]);
    }

    #[test]
    fn snapshot_before_wrap_is_in_push_order() {
        let rec = FlightRecorder::new(8);
        for i in 0..3u64 {
            assert!(!rec.push(span(7, i as u32 + 1, i * 10)));
        }
        assert_eq!(rec.dropped(), 0);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].at, 0);
        assert_eq!(snap[2].at, 20);
        assert_eq!(snap[1].trace, TraceId(7));
        assert_eq!(snap[1].kind, SpanKind::Route);
        assert_eq!(snap[1].broker, 3);
    }

    #[test]
    fn span_fields_roundtrip_through_the_ring() {
        let rec = FlightRecorder::new(2);
        let s = SpanRecord {
            trace: TraceId(0xDEAD_BEEF),
            span: 0xFFFF_FFFF,
            parent: 0x1234_5678,
            broker: u16::MAX,
            kind: SpanKind::CrashDrop,
            at: u64::MAX,
        };
        rec.push(s);
        assert_eq!(rec.snapshot(), vec![s]);
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_one_in_n() {
        let a = Tracer::new(1, 8, 0x5EED, 64);
        let b = Tracer::new(1, 8, 0x5EED, 64);
        let hits: Vec<u64> = (1..=10_000u64).filter(|&i| a.sampled(TraceId(i))).collect();
        for &i in &hits {
            assert!(b.sampled(TraceId(i)), "same seed must sample identically");
        }
        // 10 000 ids at 1-in-64 ≈ 156 expected; allow a wide band.
        assert!((50..=350).contains(&hits.len()), "got {}", hits.len());
        // A different seed samples a different subset.
        let c = Tracer::new(1, 8, 0xBAD, 64);
        assert!(hits.iter().any(|&i| !c.sampled(TraceId(i))));
    }

    #[test]
    fn sample_one_in_one_records_everything_and_none_is_never_sampled() {
        let t = Tracer::new(2, 16, 9, 1);
        assert!(!t.sampled(TraceId::NONE));
        for _ in 0..10 {
            let ctx = t.new_root();
            assert!(t.sampled(ctx.trace));
            assert_ne!(t.record_ctx(ctx, 1, SpanKind::Enqueue, 5), 0);
        }
        assert_eq!(t.recorder(1).map(FlightRecorder::len), Some(10));
        assert_eq!(t.recorder(0).map(FlightRecorder::len), Some(0));
        // Out-of-range broker records nothing.
        assert_eq!(t.record(TraceId(1), 0, 99, SpanKind::Route, 0), 0);
    }

    #[test]
    fn unsampled_traces_record_nothing() {
        let t = Tracer::new(1, 16, 0, u64::MAX);
        // With a 1-in-2^64 rate essentially nothing is sampled.
        for i in 1..100u64 {
            assert_eq!(t.record(TraceId(i), 0, 0, SpanKind::Route, i), 0);
        }
        assert!(t.recorder(0).is_some_and(FlightRecorder::is_empty));
    }

    #[test]
    fn chrome_export_is_deterministic_and_loadable_shape() {
        let make = || {
            let t = Tracer::new(2, 8, 42, 1);
            let root = t.new_root();
            let e = t.record_ctx(root, 0, SpanKind::Enqueue, 0);
            let d = t.record(root.trace, e, 1, SpanKind::Dequeue, 3);
            t.record(root.trace, d, 1, SpanKind::Deliver, 3);
            t.chrome_trace_string()
        };
        let a = make();
        assert_eq!(a, make(), "export must be byte-identical across runs");
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"deliver\""));
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    fn span_kind_names_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..=8u8 {
            let kind = SpanKind::from_u8(k).expect("kind");
            assert!(seen.insert(kind.as_str()));
        }
        assert!(SpanKind::from_u8(9).is_none());
    }
}
