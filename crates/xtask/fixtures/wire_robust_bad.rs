//! Fixture for the wire-robust pass: one unguarded slice index and one
//! unchecked length multiply inside decode-reachable code. The
//! BOUND-commented index passes, and so does the indexing in the
//! helper that the decode entry point never reaches.

pub fn decode(input: &[u8]) -> Option<(u8, usize)> {
    let first = input[0]; // violation: unguarded index
    let count = usize::from(first);
    let total = count * 4; // violation: unchecked length arithmetic
    // BOUND: decode callers hand in at least a two-byte header.
    let second = input[1];
    read_rest(input, total).map(|len| (second, len))
}

fn read_rest(input: &[u8], total: usize) -> Option<usize> {
    input.get(total).map(|_| total)
}

pub fn encode_scratch(buf: &[u8]) -> u8 {
    buf[7]
}
