//! Fixture call sites for the sharded-matching counter family: the
//! registered `match.shard_*` / `summary.*` names pass, exactly one
//! unregistered one is seeded.

static FANOUT: Count = Count::new("match.shard_fanout"); // registered literal: fine
static MERGE_NS: Count = Count::new(names::APP_SHARD_MERGE_NS); // constant: fine
static FLIPS: Count = Count::new("summary.snapshot_flips"); // registered literal: fine
static ROGUE: Count = Count::new("summary.shard_unregistered"); // violation

pub fn record() {
    let c = counter("summary.deferred_reclaims"); // registered literal: fine
    let _ = (c, &FANOUT, &MERGE_NS, &FLIPS, &ROGUE);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_region_literals_are_exempt() {
        let _ = Count::new("match.shard_test_only");
    }
}
