//! Fixture wire codec that leaves derived state alone: zero findings.
//! Mentioning anchor_index in a comment or "anchor_index in a string"
//! is fine; only code references count.

pub fn encode(s: &Summary, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.rows.len() as u32).to_be_bytes());
    for row in &s.rows {
        out.extend_from_slice(&row.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_touch_derived_state() {
        let s = Summary::default();
        assert!(s.anchor_index.is_empty());
    }
}

pub fn encode_dense(summary: &DenseSummary, out: &mut Vec<u8>) {
    // The clean codec resolves dense postings back to full ids through a
    // summary method instead of reaching into the intern table.
    let mut resolved = Vec::new();
    for row in &summary.rows {
        summary.resolve_postings(row, &mut resolved);
        out.extend_from_slice(&(resolved.len() as u32).to_be_bytes());
    }
}
