//! Fixture declaring derived-state fields for the derived-state lint.

pub struct Summary {
    pub rows: Vec<u32>,
    anchor_index: Vec<usize>, // lint: derived
}

/// Intern-table shape: the table maps full ids to dense indices and
/// carries per-id `required` counts; both are rebuilt from the rows on
/// decode and must never appear in a wire codec.
pub struct InternTable {
    pub ids: Vec<u64>,
    required: Vec<u32>, // lint: derived
}

pub struct DenseSummary {
    pub rows: Vec<u32>,
    intern: InternTable, // lint: derived
}

/// Compiled match-plan shape: the columnar plan (key banks plus the
/// postings arena) is compiled from the rows, cached, and rebuilt after
/// decode; it must never appear in a wire codec.
pub struct PlannedSummary {
    pub rows: Vec<u32>,
    plan: MatchPlan, // lint: derived
}
