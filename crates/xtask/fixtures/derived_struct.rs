//! Fixture declaring a derived-state field for the derived-state lint.

pub struct Summary {
    pub rows: Vec<u32>,
    anchor_index: Vec<usize>, // lint: derived
}
