//! Fixture for the wire-tags lint: `TAG_ORPHAN` is encoded but never
//! decoded (one reference beyond its declaration) — one violation.
//! `TAG_PAIRED` and `KIND_PAIRED` appear on both sides *and* in decode
//! match arms, so they pass; `TAG_NOT_A_TAG` is not a `u8` and is out
//! of scope.

const TAG_PAIRED: u8 = 0;
const TAG_ORPHAN: u8 = 1;
const KIND_PAIRED: u8 = 0;
const TAG_NOT_A_TAG: u16 = 9;

pub fn encode(kind: bool, out: &mut Vec<u8>) {
    out.push(if kind { TAG_PAIRED } else { TAG_ORPHAN });
    out.push(KIND_PAIRED);
    out.extend_from_slice(&TAG_NOT_A_TAG.to_be_bytes());
}

pub fn decode(input: &[u8]) -> Option<bool> {
    let flag = match input.first()? {
        &TAG_PAIRED => true,
        _ => return None,
    };
    match input.get(1)? {
        &KIND_PAIRED => Some(flag),
        _ => None,
    }
}
