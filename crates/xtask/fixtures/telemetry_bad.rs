//! Fixture call sites for the telemetry-names lint: exactly one seeded
//! violation (the rogue literal).

static GOOD: Count = Count::new(names::APP_GOOD); // constant: fine
static ALSO_GOOD: Count = Count::new("app.good"); // registered literal: fine
static ROGUE: Count = Count::new("app.rogue"); // violation: not registered
static STAGE: Stage = Stage::new("app.other"); // registered literal: fine

pub fn record() {
    let h = histogram("test.scratch"); // `test.` prefix: exempt
    let g = gauge(&format!("app.dyn.{}", 1)); // not a literal: fine
    let c = counter("app.good");
    let _ = (h, g, c, &GOOD, &ALSO_GOOD, &ROGUE, &STAGE);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let _ = counter("app.anything_goes_in_tests");
    }
}
