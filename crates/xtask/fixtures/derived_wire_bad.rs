//! Fixture wire codec that references a derived field: one violation.
//! The mention of anchor_index in this comment must not fire.

pub fn encode(s: &Summary, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.rows.len() as u32).to_be_bytes());
    // Serializing rebuilt state is the bug this lint exists to catch:
    out.extend_from_slice(&(s.anchor_index.len() as u32).to_be_bytes());
}
