//! Fixture wire codec that references derived fields: three violations.
//! The mention of anchor_index in this comment must not fire.

pub fn encode(s: &Summary, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.rows.len() as u32).to_be_bytes());
    // Serializing rebuilt state is the bug this lint exists to catch:
    out.extend_from_slice(&(s.anchor_index.len() as u32).to_be_bytes());
}

pub fn encode_dense(s: &DenseSummary, out: &mut Vec<u8>) {
    // Same bug for the intern-table shape: the table and its required
    // counts are decode-time artifacts, not wire payload.
    out.extend_from_slice(&(s.intern.ids.len() as u32).to_be_bytes());
    for count in &s.intern.required {
        out.extend_from_slice(&count.to_be_bytes());
    }
}

pub fn encode_planned(s: &PlannedSummary, out: &mut Vec<u8>) {
    // Serializing the compiled plan's arena is the same bug again: the
    // plan is recompiled lazily after decode, never shipped.
    out.extend_from_slice(&(s.plan.arena.len() as u32).to_be_bytes());
}
