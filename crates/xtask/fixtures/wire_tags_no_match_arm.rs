//! Fixture for the wire-tags match-arm upgrade: `TAG_SKIPPED` is
//! referenced by both the encoder and the decoder, but the decoder
//! compares with `==` instead of matching on it — one violation.
//! `TAG_MATCHED` appears in a real decode arm and passes.

const TAG_MATCHED: u8 = 1;
const TAG_SKIPPED: u8 = 2;

pub fn encode(matched: bool, out: &mut Vec<u8>) {
    out.push(if matched { TAG_MATCHED } else { TAG_SKIPPED });
}

pub fn decode(input: &[u8]) -> Option<bool> {
    if input.first() == Some(&TAG_SKIPPED) {
        return Some(false);
    }
    match input.first()? {
        &TAG_MATCHED => Some(true),
        _ => None,
    }
}
