//! Fixture for the unsafe-audit module allowlist: this file is NOT on
//! the allowlist, so its single unsafe block fires even though the
//! block itself is properly commented.

pub fn read(ptr: *const u8) -> u8 {
    // SAFETY: a comment does not make the module allowlisted.
    unsafe { *ptr }
}
