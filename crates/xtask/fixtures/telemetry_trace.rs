//! Fixture call sites for the trace counter family: the registered
//! `trace.*` names pass, exactly one unregistered one is seeded.

static SPANS: Count = Count::new("trace.spans"); // registered literal: fine
static HEAD_DROPS: Count = Count::new(names::APP_TRACE_HEAD_DROPS); // constant: fine
static ROGUE: Count = Count::new("trace.unregistered"); // violation

pub fn record() {
    let c = counter("trace.sampled"); // registered literal: fine
    let _ = (c, &SPANS, &HEAD_DROPS, &ROGUE);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_region_literals_are_exempt() {
        let _ = Count::new("trace.test_only_name");
    }
}
