//! Fixture for the unsafe-audit pass (this file IS allowlisted): the
//! commented block and the commented `unsafe impl` pass, the bare
//! block in `read_second` is the one seeded violation.

pub fn read_first(ptr: *const u8) -> u8 {
    // SAFETY: the caller guarantees `ptr` points at a live byte.
    unsafe { *ptr }
}

pub fn read_second(ptr: *const u8) -> u8 {
    unsafe { *ptr.add(1) } // violation: no safety justification
}

pub struct Wrapper(*const u8);

// SAFETY: the wrapped pointer is never dereferenced off-thread.
unsafe impl Send for Wrapper {}
