//! Fixture for the no-panic pass: a hot-path root with exactly four
//! seeded violations. An `unwrap()` in a doc comment must not fire,
//! nor must the ones in strings, `unwrap_or` calls or the
//! `#[cfg(test)]` module below.

/// Doc example that must be ignored: `value.unwrap()`.
pub fn match_event_into(input: Option<u32>) -> u32 {
    let msg = "an unwrap() inside a string literal";
    let _ = msg;
    let fine = input.unwrap_or(0); // `unwrap_or` is infallible
    let bad_unwrap = input.unwrap(); // violation 1
    let bad_expect = input.expect("boom"); // violation 2
    if fine > 10 {
        panic!("violation 3");
    }
    match bad_unwrap.checked_add(bad_expect) {
        Some(v) => v,
        None => unreachable!("violation 4"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(match_event_into(Some(1)).checked_mul(2).unwrap(), 2);
        let ok: Result<u32, ()> = Ok(3);
        ok.expect("tests are allowed to expect");
    }
}
