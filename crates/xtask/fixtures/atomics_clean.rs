//! Fixture for the atomic-policy pass: every ordering conforms to the
//! declared all-SeqCst policy — zero findings.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Epoch {
    value: AtomicU64,
}

impl Epoch {
    pub fn advance(&self) -> u64 {
        self.value.fetch_add(1, Ordering::SeqCst)
    }

    pub fn read(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }

    pub fn store(&self, v: u64) {
        self.value.store(v, Ordering::SeqCst)
    }
}
