//! Fixture for the atomic-policy pass: the epoch cell is declared
//! all-SeqCst in the policy, but `store_fast` downgraded its store to
//! Relaxed — exactly one violation.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Epoch {
    value: AtomicU64,
}

impl Epoch {
    pub fn advance(&self) -> u64 {
        self.value.fetch_add(1, Ordering::SeqCst)
    }

    pub fn read(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }

    pub fn store_fast(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed) // the downgrade this pass exists to catch
    }
}
