//! Fixture for the transitive no-panic pass: the root itself is clean,
//! one panic hides two bare calls deep, another behind a method call
//! resolved conservatively by name — two violations. The uncalled
//! sibling's unwrap must NOT fire.

pub fn match_event_into(input: Option<u32>) -> u32 {
    let table = Table { rows: Vec::new() };
    helper(input) + table.lookup(3)
}

fn helper(input: Option<u32>) -> u32 {
    deep_helper(input)
}

fn deep_helper(input: Option<u32>) -> u32 {
    input.unwrap() // violation: two hops below the root
}

struct Table {
    rows: Vec<u32>,
}

impl Table {
    fn lookup(&self, i: usize) -> u32 {
        *self.rows.get(i).expect("caller bounds i") // violation: method hop
    }
}

pub fn uncalled_sibling(input: Option<u32>) -> u32 {
    input.unwrap() // never reached from a root: must not fire
}
