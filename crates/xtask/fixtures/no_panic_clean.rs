//! Fixture for the no-panic pass: a hot-path root with zero findings.
//! `assert!`/`debug_assert!` are contract checks and stay allowed.

pub fn publish_batch(input: Option<u32>) -> Result<u32, &'static str> {
    let value = input.ok_or("missing input")?;
    debug_assert!(value < 1_000_000, "caller bounds the domain");
    assert!(value != u32::MAX);
    Ok(value.saturating_add(1))
}

#[cfg(test)]
mod tests {
    #[test]
    fn still_fine_to_unwrap_here() {
        assert_eq!(super::publish_batch(Some(1)).unwrap(), 2);
    }
}
