//! Fixture call sites for the chaos counter family: the registered
//! `chaos.*` names pass, exactly one unregistered one is seeded.

static DROPS: Count = Count::new("chaos.drops"); // registered literal: fine
static RESYNCS: Count = Count::new(names::APP_CHAOS_RESYNCS); // constant: fine
static ROGUE: Count = Count::new("chaos.unregistered"); // violation

pub fn record() {
    let c = counter("chaos.resyncs"); // registered literal: fine
    let _ = (c, &DROPS, &RESYNCS, &ROGUE);
}
