//! Fixture call sites for the transport counter family: the registered
//! `transport.*` / `net.*` / `publish.*` names pass, exactly one
//! unregistered one is seeded.

static FRAMES_RX: Count = Count::new("transport.frames_rx"); // registered literal: fine
static MAILBOX_FULL: Count = Count::new(names::APP_NET_MAILBOX_FULL); // constant: fine
static ACKED: Count = Count::new("publish.acked"); // registered literal: fine
static ROGUE: Count = Count::new("transport.unregistered"); // violation

pub fn record() {
    let c = counter("transport.reconnects"); // registered literal: fine
    let _ = (c, &FRAMES_RX, &MAILBOX_FULL, &ACKED, &ROGUE);
}
