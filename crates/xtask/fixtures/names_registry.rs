//! Fixture registry for the telemetry-names lint: the literals declared
//! here (outside tests) form the allowed set.

pub const APP_GOOD: &str = "app.good";
pub const APP_OTHER: &str = "app.other";
pub const APP_CHAOS_DROPS: &str = "chaos.drops";
pub const APP_CHAOS_RESYNCS: &str = "chaos.resyncs";
pub const APP_TRACE_SPANS: &str = "trace.spans";
pub const APP_TRACE_HEAD_DROPS: &str = "trace.head_drops";
pub const APP_TRACE_SAMPLED: &str = "trace.sampled";

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_literal_is_not_registered() {
        // This literal must NOT enter the registry.
        let _ = "app.test_only";
    }
}
