//! Fixture registry for the telemetry-names lint: the literals declared
//! here (outside tests) form the allowed set.

pub const APP_GOOD: &str = "app.good";
pub const APP_OTHER: &str = "app.other";
pub const APP_CHAOS_DROPS: &str = "chaos.drops";
pub const APP_CHAOS_RESYNCS: &str = "chaos.resyncs";
pub const APP_TRACE_SPANS: &str = "trace.spans";
pub const APP_TRACE_HEAD_DROPS: &str = "trace.head_drops";
pub const APP_TRACE_SAMPLED: &str = "trace.sampled";
pub const APP_SHARD_FANOUT: &str = "match.shard_fanout";
pub const APP_SHARD_MERGE_NS: &str = "match.shard_merge_ns";
pub const APP_SNAPSHOT_FLIPS: &str = "summary.snapshot_flips";
pub const APP_DEFERRED_RECLAIMS: &str = "summary.deferred_reclaims";
pub const APP_TRANSPORT_FRAMES_RX: &str = "transport.frames_rx";
pub const APP_TRANSPORT_RECONNECTS: &str = "transport.reconnects";
pub const APP_NET_MAILBOX_FULL: &str = "net.mailbox_full";
pub const APP_PUBLISH_ACKED: &str = "publish.acked";

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_literal_is_not_registered() {
        // This literal must NOT enter the registry.
        let _ = "app.test_only";
    }
}
