//! A hand-rolled token-level lexer for Rust sources.
//!
//! The lints in this crate need no type information, but they do need a
//! faithful *token* view of the source: identifiers, literals,
//! lifetimes, punctuation, and matched delimiter pairs — with comments
//! and string contents out of the token stream entirely, so doc
//! examples and error messages can never false-positive a lint. On top
//! of the raw stream the lexer resolves two structural facts the passes
//! share: attribute token ranges (`#[...]` / `#![...]`) and the token
//! ranges of items annotated exactly `#[cfg(test)]`.
//!
//! The lexer is deliberately conservative where full fidelity would
//! need a parser: multi-byte operators are left as adjacent single-byte
//! [`TokenKind::Punct`] tokens (helpers like [`Lexed::is_fat_arrow`]
//! recognize the compounds the lints care about), and malformed input
//! degrades to unmatched delimiters rather than an error.

/// One lexical token. Offsets are byte positions into the source.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    /// For `Open`/`Close` delimiters: the index of the matching partner
    /// token, or `usize::MAX` when unmatched.
    pub mat: usize,
}

/// What a token is.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `SeqCst`, ...).
    Ident,
    /// A lifetime (`'a`, `'static`), quote included in the span.
    Lifetime,
    /// A numeric literal, suffix included (`0xFF`, `1.5e3`, `2u64`).
    Num,
    /// A string or byte-string literal; the cooked content is carried
    /// here so the span in the source can stay opaque.
    Str(String),
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation byte (`.`, `:`, `!`, `=`, `+`, ...).
    Punct(u8),
    /// An opening delimiter: `(`, `[` or `{`.
    Open(u8),
    /// A closing delimiter: `)`, `]` or `}`.
    Close(u8),
}

/// A lexed source file: the raw bytes plus the token stream and the
/// structural regions the lint passes share.
#[derive(Debug)]
pub struct Lexed {
    pub src: Vec<u8>,
    pub tokens: Vec<Token>,
    /// Token-index ranges `[lo, hi)` of items annotated `#[cfg(test)]`
    /// (attribute included).
    pub test_regions: Vec<(usize, usize)>,
    /// Token-index ranges `[lo, hi)` of attributes themselves.
    pub attr_regions: Vec<(usize, usize)>,
}

impl Lexed {
    /// The source text of token `i`.
    pub fn text(&self, i: usize) -> &[u8] {
        let t = &self.tokens[i];
        &self.src[t.start..t.end]
    }

    /// Whether token `i` is an identifier spelling `s`.
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        matches!(self.tokens[i].kind, TokenKind::Ident) && self.text(i) == s.as_bytes()
    }

    /// Whether token `i` is the punctuation byte `b`.
    pub fn is_punct(&self, i: usize, b: u8) -> bool {
        matches!(self.tokens[i].kind, TokenKind::Punct(p) if p == b)
    }

    /// Whether tokens `i`, `i + 1` form a fat arrow `=>`.
    pub fn is_fat_arrow(&self, i: usize) -> bool {
        i + 1 < self.tokens.len()
            && self.is_punct(i, b'=')
            && self.is_punct(i + 1, b'>')
            && self.tokens[i].end == self.tokens[i + 1].start
    }

    /// Whether tokens `i`, `i + 1` form a path separator `::`.
    pub fn is_path_sep(&self, i: usize) -> bool {
        i + 1 < self.tokens.len()
            && self.is_punct(i, b':')
            && self.is_punct(i + 1, b':')
            && self.tokens[i].end == self.tokens[i + 1].start
    }

    /// 1-based line number of token `i`.
    pub fn line(&self, i: usize) -> usize {
        line_of(&self.src, self.tokens[i].start)
    }

    /// Whether token `i` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| (lo..hi).contains(&i))
    }

    /// Whether token `i` falls inside an attribute.
    pub fn in_attr(&self, i: usize) -> bool {
        self.attr_regions
            .iter()
            .any(|&(lo, hi)| (lo..hi).contains(&i))
    }

    /// Whether the line holding token `i`, or one of the `above` lines
    /// before it, contains `marker` inside a `//` comment. Used for the
    /// justification-comment conventions (`// SAFETY:`, `// BOUND:`).
    pub fn comment_marker_near(&self, i: usize, marker: &str, above: usize) -> bool {
        let line = line_of(&self.src, self.tokens[i].start);
        let lo = line.saturating_sub(above);
        for (idx, text) in self.src.split(|&b| b == b'\n').enumerate() {
            let this = idx + 1;
            if this < lo {
                continue;
            }
            if this > line {
                break;
            }
            if let Some(slash) = find(text, b"//", 0) {
                if find(&text[slash..], marker.as_bytes(), 0).is_some() {
                    return true;
                }
            }
        }
        false
    }
}

/// 1-based line number of byte `offset` in `src`.
pub fn line_of(src: &[u8], offset: usize) -> usize {
    1 + src[..offset.min(src.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// First occurrence of `needle` in `haystack[from..]`.
pub fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() || needle.is_empty() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| from + p)
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into tokens and resolves delimiter matching plus the
/// attribute and `#[cfg(test)]` regions.
pub fn lex(src: &[u8]) -> Lexed {
    let mut tokens = Vec::new();
    let n = src.len();
    let mut i = 0;

    while i < n {
        let b = src[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (covers `///` and `//!` doc comments too).
        if b == b'/' && i + 1 < n && src[i + 1] == b'/' {
            i = find(src, b"\n", i).unwrap_or(n);
            continue;
        }
        // Block comment, possibly nested.
        if b == b'/' && i + 1 < n && src[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if src[i] == b'/' && i + 1 < n && src[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if src[i] == b'*' && i + 1 < n && src[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw byte) strings: r"..", r#".."#, br#".."#.
        if (b == b'r' || b == b'b') && (i == 0 || !is_ident_cont(src[i.saturating_sub(1)])) {
            if let Some((end, value)) = raw_string(src, i) {
                tokens.push(Token {
                    kind: TokenKind::Str(value),
                    start: i,
                    end,
                    mat: usize::MAX,
                });
                i = end;
                continue;
            }
        }
        // Byte string b"..", byte char b'x'.
        if b == b'b' && i + 1 < n && (i == 0 || !is_ident_cont(src[i - 1])) {
            if src[i + 1] == b'"' {
                let (end, value) = cooked_string(src, i + 1);
                tokens.push(Token {
                    kind: TokenKind::Str(value),
                    start: i,
                    end,
                    mat: usize::MAX,
                });
                i = end;
                continue;
            }
            if src[i + 1] == b'\'' {
                let end = char_literal_end(src, i + 1).unwrap_or(i + 2);
                tokens.push(Token {
                    kind: TokenKind::Char,
                    start: i,
                    end,
                    mat: usize::MAX,
                });
                i = end;
                continue;
            }
        }
        // Plain string "..".
        if b == b'"' {
            let (end, value) = cooked_string(src, i);
            tokens.push(Token {
                kind: TokenKind::Str(value),
                start: i,
                end,
                mat: usize::MAX,
            });
            i = end;
            continue;
        }
        // Char literal vs lifetime.
        if b == b'\'' {
            if let Some(end) = char_literal_end(src, i) {
                tokens.push(Token {
                    kind: TokenKind::Char,
                    start: i,
                    end,
                    mat: usize::MAX,
                });
                i = end;
                continue;
            }
            // A lifetime: consume the quote and the identifier.
            let mut j = i + 1;
            while j < n && is_ident_cont(src[j]) {
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Lifetime,
                start: i,
                end: j,
                mat: usize::MAX,
            });
            i = j;
            continue;
        }
        // Numeric literal.
        if b.is_ascii_digit() {
            let mut j = i + 1;
            while j < n {
                let c = src[j];
                if is_ident_cont(c) {
                    j += 1;
                } else if c == b'.' && j + 1 < n && src[j + 1].is_ascii_digit() {
                    // A float's fractional part — but not `0..n` ranges
                    // or `1.max(..)` method calls.
                    j += 2;
                } else if (c == b'+' || c == b'-')
                    && matches!(src[j - 1], b'e' | b'E')
                    && j + 1 < n
                    && src[j + 1].is_ascii_digit()
                {
                    // Signed exponent: `1e-3`.
                    j += 2;
                } else {
                    break;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Num,
                start: i,
                end: j,
                mat: usize::MAX,
            });
            i = j;
            continue;
        }
        // Identifier or keyword.
        if is_ident_start(b) {
            let mut j = i + 1;
            while j < n && is_ident_cont(src[j]) {
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                start: i,
                end: j,
                mat: usize::MAX,
            });
            i = j;
            continue;
        }
        // Delimiters and punctuation.
        let kind = match b {
            b'(' | b'[' | b'{' => TokenKind::Open(b),
            b')' | b']' | b'}' => TokenKind::Close(b),
            other => TokenKind::Punct(other),
        };
        tokens.push(Token {
            kind,
            start: i,
            end: i + 1,
            mat: usize::MAX,
        });
        i += 1;
    }

    match_delims(&mut tokens);
    let mut lexed = Lexed {
        src: src.to_vec(),
        tokens,
        test_regions: Vec::new(),
        attr_regions: Vec::new(),
    };
    find_regions(&mut lexed);
    lexed
}

/// If a raw (byte) string starts at `i`, returns (end, content).
fn raw_string(src: &[u8], i: usize) -> Option<(usize, String)> {
    let n = src.len();
    let mut j = i;
    if src[j] == b'b' {
        j += 1;
    }
    if j >= n || src[j] != b'r' {
        return None;
    }
    let mut k = j + 1;
    let mut hashes = 0usize;
    while k < n && src[k] == b'#' {
        hashes += 1;
        k += 1;
    }
    if k >= n || src[k] != b'"' {
        return None;
    }
    let content_start = k + 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat(b'#').take(hashes))
        .collect();
    let mut e = content_start;
    while e < n && !src[e..].starts_with(&closer) {
        e += 1;
    }
    let content_end = e.min(n);
    Some((
        (content_end + closer.len()).min(n),
        String::from_utf8_lossy(&src[content_start..content_end]).into_owned(),
    ))
}

/// Consumes a cooked string starting at the opening quote `start`;
/// returns (one-past-closing-quote, content). Escapes pass through raw:
/// the lints only compare plain dotted metric names, which contain none.
fn cooked_string(src: &[u8], start: usize) -> (usize, String) {
    let n = src.len();
    let mut i = start + 1;
    let mut value = Vec::new();
    while i < n {
        match src[i] {
            b'\\' if i + 1 < n => {
                value.push(src[i + 1]);
                i += 2;
            }
            b'"' => return (i + 1, String::from_utf8_lossy(&value).into_owned()),
            c => {
                value.push(c);
                i += 1;
            }
        }
    }
    (n, String::from_utf8_lossy(&value).into_owned())
}

/// If a character literal starts at the quote `i`, returns its end;
/// `None` means the quote opens a lifetime instead.
fn char_literal_end(src: &[u8], i: usize) -> Option<usize> {
    let n = src.len();
    if i + 1 >= n {
        return None;
    }
    if src[i + 1] == b'\\' {
        // Escaped char: scan (bounded) for the closing quote.
        let mut e = i + 2;
        while e < n && src[e] != b'\'' && e - i < 12 {
            e += 1;
        }
        return (e < n && src[e] == b'\'').then_some(e + 1);
    }
    // `'x'` — any single byte followed by a closing quote, unless the
    // middle byte starts an identifier and no quote follows (lifetime).
    if i + 2 < n && src[i + 2] == b'\'' && src[i + 1] != b'\'' {
        return Some(i + 3);
    }
    None
}

/// Resolves `mat` for every delimiter pair via a per-kind stack walk.
fn match_delims(tokens: &mut [Token]) {
    let mut stack: Vec<(usize, u8)> = Vec::new();
    for idx in 0..tokens.len() {
        match tokens[idx].kind {
            TokenKind::Open(b) => stack.push((idx, b)),
            TokenKind::Close(b) => {
                let want = match b {
                    b')' => b'(',
                    b']' => b'[',
                    _ => b'{',
                };
                // Tolerate malformed input: pop until the kinds line up.
                while let Some((open, kind)) = stack.pop() {
                    if kind == want {
                        tokens[open].mat = idx;
                        tokens[idx].mat = open;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Records attribute regions and `#[cfg(test)]` item regions.
fn find_regions(lexed: &mut Lexed) {
    let toks = &lexed.tokens;
    let len = toks.len();
    let mut attrs = Vec::new();
    let mut tests = Vec::new();
    let mut i = 0;
    while i < len {
        if !lexed.is_punct(i, b'#') {
            i += 1;
            continue;
        }
        let mut open = i + 1;
        if open < len && lexed.is_punct(open, b'!') {
            open += 1;
        }
        if open >= len || !matches!(toks[open].kind, TokenKind::Open(b'[')) {
            i += 1;
            continue;
        }
        let close = toks[open].mat;
        if close == usize::MAX {
            i += 1;
            continue;
        }
        attrs.push((i, close + 1));
        // Exactly `#[cfg(test)]`: cfg ( test ).
        let body: Vec<&[u8]> = (open + 1..close)
            .map(|t| &lexed.src[toks[t].start..toks[t].end])
            .collect();
        let is_cfg_test = body.len() == 4
            && body[0] == b"cfg"
            && body[1] == b"("
            && body[2] == b"test"
            && body[3] == b")";
        if is_cfg_test {
            // The annotated item: skip any further attributes, then run
            // to the first top-level `{ .. }` body or terminating `;`.
            let mut j = close + 1;
            loop {
                if j + 1 < len && lexed.is_punct(j, b'#') {
                    let mut o = j + 1;
                    if o < len && lexed.is_punct(o, b'!') {
                        o += 1;
                    }
                    if o < len
                        && matches!(toks[o].kind, TokenKind::Open(b'['))
                        && toks[o].mat != usize::MAX
                    {
                        j = toks[o].mat + 1;
                        continue;
                    }
                }
                break;
            }
            let mut end = len;
            while j < len {
                match toks[j].kind {
                    TokenKind::Open(b'{') => {
                        end = if toks[j].mat == usize::MAX {
                            len
                        } else {
                            toks[j].mat + 1
                        };
                        break;
                    }
                    TokenKind::Open(_) if toks[j].mat != usize::MAX => {
                        j = toks[j].mat + 1;
                        continue;
                    }
                    TokenKind::Punct(b';') => {
                        end = j + 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            tests.push((i, end));
        }
        i = close + 1;
    }
    lexed.attr_regions = attrs;
    lexed.test_regions = tests;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<String> {
        (0..lexed.tokens.len())
            .filter(|&i| matches!(lexed.tokens[i].kind, TokenKind::Ident))
            .map(|i| String::from_utf8_lossy(lexed.text(i)).into_owned())
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_tokens() {
        let src = br#"
// a comment with unwrap()
/* block /* nested */ still comment unwrap() */
let s = "literal with panic!";
let c = 'x';
let lt: &'static str = "y";
code();
"#;
        let lexed = lex(src);
        let names = idents(&lexed);
        assert!(!names.iter().any(|n| n == "unwrap" || n == "panic"));
        assert!(names.iter().any(|n| n == "code"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(t.kind, TokenKind::Lifetime)));
        let strings: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Str(v) => Some(v.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, ["literal with panic!", "y"]);
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = br##"let a = r#"raw "quoted" body"#; let b = "es\"c";"##;
        let lexed = lex(src);
        let strings: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Str(v) => Some(v.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, ["raw \"quoted\" body", "es\"c"]);
    }

    #[test]
    fn delimiters_match() {
        let lexed = lex(b"fn f(a: [u8; 4]) { g(a[0]); }");
        for (i, t) in lexed.tokens.iter().enumerate() {
            if let TokenKind::Open(_) = t.kind {
                let m = t.mat;
                assert_ne!(m, usize::MAX, "unmatched open at {i}");
                assert_eq!(lexed.tokens[m].mat, i);
            }
        }
    }

    #[test]
    fn cfg_test_regions_cover_the_test_module() {
        let src = br#"
fn hot() {}
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
}
fn after() {}
"#;
        let lexed = lex(src);
        assert_eq!(lexed.test_regions.len(), 1);
        let unwrap_tok = (0..lexed.tokens.len())
            .find(|&i| lexed.is_ident(i, "unwrap"))
            .expect("unwrap token");
        assert!(lexed.in_test(unwrap_tok));
        let after_tok = (0..lexed.tokens.len())
            .find(|&i| lexed.is_ident(i, "after"))
            .expect("after token");
        assert!(!lexed.in_test(after_tok));
    }

    #[test]
    fn cfg_any_test_is_not_a_test_region() {
        let lexed = lex(b"#[cfg(any(test, debug_assertions))]\nfn validate() {}\n");
        assert!(lexed.test_regions.is_empty());
        assert_eq!(lexed.attr_regions.len(), 1);
    }

    #[test]
    fn numbers_lex_as_single_tokens() {
        let lexed = lex(b"let x = 1.5e-3 + 0xFF + 2u64; let r = 0..10;");
        let nums: Vec<&[u8]> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Num))
            .map(|t| &lexed.src[t.start..t.end])
            .collect();
        assert_eq!(nums, [&b"1.5e-3"[..], b"0xFF", b"2u64", b"0", b"10"]);
    }

    #[test]
    fn fat_arrow_and_path_sep_helpers() {
        let lexed = lex(b"match x { A::B => 1, _ => 2 }");
        let arrow = (0..lexed.tokens.len())
            .filter(|&i| lexed.is_fat_arrow(i))
            .count();
        assert_eq!(arrow, 2);
        let seps = (0..lexed.tokens.len())
            .filter(|&i| lexed.is_path_sep(i))
            .count();
        assert_eq!(seps, 1);
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex(b"let c = 'x'; let e = '\\n'; fn f<'a>(s: &'a str) {}");
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Char))
            .count();
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Lifetime))
            .count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn comment_marker_near_finds_safety() {
        let src = b"fn f() {\n    // SAFETY: the pointer is unique\n    let x = 1;\n}\n";
        let lexed = lex(src);
        let x_tok = (0..lexed.tokens.len())
            .find(|&i| lexed.is_ident(i, "x"))
            .expect("x token");
        assert!(lexed.comment_marker_near(x_tok, "SAFETY:", 2));
        assert!(!lexed.comment_marker_near(x_tok, "BOUND:", 2));
    }
}
