//! A small lexical scanner for Rust sources.
//!
//! The lints in this crate are deliberately lexical: they need no type
//! information, only a faithful separation of *code* from comments and
//! literals. The scanner produces a masked copy of the source — comment
//! and string-literal bytes blanked out, offsets preserved — plus the
//! string literals themselves and the byte ranges of `#[cfg(test)]`
//! items, so the lints can pattern-match code without tripping over
//! doc examples, error messages or test bodies.

/// One string literal found in the source.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Byte offset of the opening quote (or the `r`/`b` prefix).
    pub start: usize,
    /// The literal's content with simple escapes passed through raw.
    pub value: String,
}

/// The result of scanning one source file.
#[derive(Debug)]
pub struct Scanned {
    /// The source with comments, string/char literals blanked to spaces
    /// (newlines preserved, so offsets and line numbers survive).
    pub masked: Vec<u8>,
    /// Every string literal, in source order.
    pub strings: Vec<StrLit>,
    /// Byte ranges of items annotated `#[cfg(test)]`.
    pub test_regions: Vec<(usize, usize)>,
}

impl Scanned {
    /// Whether `offset` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| (lo..hi).contains(&offset))
    }

    /// The string literal starting exactly at `offset`, if any.
    pub fn string_at(&self, offset: usize) -> Option<&StrLit> {
        self.strings.iter().find(|s| s.start == offset)
    }
}

/// 1-based line number of `offset` in `src`.
pub fn line_of(src: &[u8], offset: usize) -> usize {
    1 + src[..offset.min(src.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans `src`, masking comments and literals and locating test regions.
pub fn scan(src: &[u8]) -> Scanned {
    let mut masked = src.to_vec();
    let mut strings = Vec::new();
    let mut i = 0;
    let n = src.len();

    let blank = |masked: &mut [u8], lo: usize, hi: usize| {
        for b in &mut masked[lo..hi] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while i < n {
        let b = src[i];
        // Line comment (also covers `///` and `//!` doc comments).
        if b == b'/' && i + 1 < n && src[i + 1] == b'/' {
            let end = src[i..]
                .iter()
                .position(|&c| c == b'\n')
                .map_or(n, |p| i + p);
            blank(&mut masked, i, end);
            i = end;
            continue;
        }
        // Block comment, possibly nested.
        if b == b'/' && i + 1 < n && src[i + 1] == b'*' {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if src[i] == b'/' && i + 1 < n && src[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if src[i] == b'*' && i + 1 < n && src[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut masked, start, i);
            continue;
        }
        // Raw (and raw byte) string: r"..", r#".."#, br#".."#.
        if (b == b'r' || b == b'b') && (i == 0 || !is_ident(src[i - 1])) {
            let mut j = i;
            if src[j] == b'b' && j + 1 < n && src[j + 1] == b'r' {
                j += 1;
            }
            if src[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && src[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && src[k] == b'"' {
                    let content_start = k + 1;
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat(b'#').take(hashes))
                        .collect();
                    let mut e = content_start;
                    while e < n && !src[e..].starts_with(&closer) {
                        e += 1;
                    }
                    let content_end = e.min(n);
                    strings.push(StrLit {
                        start: i,
                        value: String::from_utf8_lossy(&src[content_start..content_end])
                            .into_owned(),
                    });
                    let end = (content_end + closer.len()).min(n);
                    blank(&mut masked, i, end);
                    i = end;
                    continue;
                }
            }
        }
        // Byte string b"..".
        if b == b'b' && i + 1 < n && src[i + 1] == b'"' && (i == 0 || !is_ident(src[i - 1])) {
            let (end, value) = cooked_string(src, i + 1);
            strings.push(StrLit { start: i, value });
            blank(&mut masked, i, end);
            i = end;
            continue;
        }
        // Plain string "..".
        if b == b'"' {
            let (end, value) = cooked_string(src, i);
            strings.push(StrLit { start: i, value });
            blank(&mut masked, i, end);
            i = end;
            continue;
        }
        // Char literal vs lifetime: only mask genuine char literals.
        if b == b'\'' && (i == 0 || !is_ident(src[i - 1])) {
            if i + 2 < n && src[i + 1] == b'\\' {
                // Escaped char: find the closing quote.
                let mut e = i + 2;
                if e < n {
                    e += 1; // the escaped byte
                }
                while e < n && src[e] != b'\'' && e - i < 12 {
                    e += 1;
                }
                if e < n && src[e] == b'\'' {
                    blank(&mut masked, i, e + 1);
                    i = e + 1;
                    continue;
                }
            } else if i + 2 < n && src[i + 2] == b'\'' && src[i + 1] != b'\'' {
                blank(&mut masked, i, i + 3);
                i += 3;
                continue;
            }
            // A lifetime — leave as code.
        }
        i += 1;
    }

    let test_regions = find_test_regions(&masked);
    Scanned {
        masked,
        strings,
        test_regions,
    }
}

/// Consumes a cooked string starting at the opening quote `start`;
/// returns (one-past-closing-quote, content).
fn cooked_string(src: &[u8], start: usize) -> (usize, String) {
    let n = src.len();
    let mut i = start + 1;
    let mut value = Vec::new();
    while i < n {
        match src[i] {
            b'\\' if i + 1 < n => {
                // Pass escapes through raw; the lints only compare plain
                // dotted metric names, which contain none.
                value.push(src[i + 1]);
                i += 2;
            }
            b'"' => return (i + 1, String::from_utf8_lossy(&value).into_owned()),
            c => {
                value.push(c);
                i += 1;
            }
        }
    }
    (n, String::from_utf8_lossy(&value).into_owned())
}

/// Byte ranges of items annotated `#[cfg(test)]`: from the attribute to
/// the closing brace of the following item (or its terminating `;`).
fn find_test_regions(masked: &[u8]) -> Vec<(usize, usize)> {
    const ATTR: &[u8] = b"#[cfg(test)]";
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(pos) = find(masked, ATTR, from) {
        let start = pos;
        let mut i = pos + ATTR.len();
        // Skip whitespace and any further attributes before the item.
        loop {
            while i < masked.len() && masked[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < masked.len() && masked[i] == b'#' {
                while i < masked.len() && masked[i] != b']' {
                    i += 1;
                }
                i += 1;
            } else {
                break;
            }
        }
        // The item body: up to the matching close brace, or `;` for
        // brace-less items (`#[cfg(test)] use ...;`).
        let mut depth = 0usize;
        let mut end = masked.len();
        while i < masked.len() {
            match masked[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = i + 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        regions.push((start, end));
        from = end.max(pos + 1);
    }
    regions
}

/// First occurrence of `needle` in `haystack[from..]`.
pub fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() || needle.is_empty() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| from + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = br#"
// a comment with unwrap()
/* block /* nested */ still comment unwrap() */
let s = "literal with panic!";
let c = 'x';
let lt: &'static str = "y";
code();
"#;
        let out = scan(src);
        let masked = String::from_utf8_lossy(&out.masked).into_owned();
        assert!(!masked.contains("comment"));
        assert!(!masked.contains("unwrap"));
        assert!(!masked.contains("panic"));
        assert!(masked.contains("code()"));
        assert!(masked.contains("&'static str"));
        assert_eq!(out.strings.len(), 2);
        assert_eq!(out.strings[0].value, "literal with panic!");
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = br##"let a = r#"raw "quoted" body"#; let b = "es\"c";"##;
        let out = scan(src);
        assert_eq!(out.strings[0].value, "raw \"quoted\" body");
        assert_eq!(out.strings[1].value, "es\"c");
    }

    #[test]
    fn test_regions_cover_the_test_module() {
        let src = br#"
fn hot() {}
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
}
fn after() {}
"#;
        let out = scan(src);
        assert_eq!(out.test_regions.len(), 1);
        let unwrap_at = find(src, b"unwrap", 0).unwrap();
        assert!(out.in_test_region(unwrap_at));
        let after_at = find(src, b"after", 0).unwrap();
        assert!(!out.in_test_region(after_at));
    }

    #[test]
    fn line_numbers() {
        let src = b"a\nb\nc";
        assert_eq!(line_of(src, 0), 1);
        assert_eq!(line_of(src, 2), 2);
        assert_eq!(line_of(src, 4), 3);
    }
}
