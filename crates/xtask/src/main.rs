//! `cargo xtask check` — repo-specific invariant lints for the subsum
//! workspace.
//!
//! The `.cargo/config.toml` alias makes `cargo xtask check` run this
//! binary. It is dependency-free on purpose: the analyzer is a
//! hand-rolled token lexer ([`lex`]) plus a conservative call graph
//! ([`graph`]), so the checker builds and runs in seconds even on a
//! cold cache, and CI can gate on it before the main build.
//!
//! Exit status: 0 when the workspace is clean, 1 when any lint fires,
//! 2 on usage or I/O errors.

#![forbid(unsafe_code)]

mod graph;
mod lex;
mod lints;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask check [--root <dir>] [--list-reachable]

Runs the workspace invariant lints over the token stream and the
conservative intra-workspace call graph:

  no-panic         no unwrap/expect/panic!/unreachable!/todo! in any
                   function reachable from a hot-path root
                   (match_event_into, query_into, route_event*,
                   publish_batch, the SnapshotCell read path, and the
                   wire decode entry points)
  wire-robust      decode-reachable functions in the wire codec files
                   justify slice indexing and length arithmetic with
                   `// BOUND:` comments
  atomic-policy    every Ordering::* use matches the checked-in policy
                   table (crates/xtask/atomics.policy)
  unsafe-audit     `unsafe` only in allowlisted modules, and every
                   unsafe block/impl carries a `// SAFETY:` comment
  telemetry-names  metric name literals live in subsum_telemetry::names
  derived-state    wire codecs do not touch `lint: derived` fields
  wire-tags        every wire tag constant is encoded AND matched in a
                   decode arm

  --list-reachable prints the functions covered by the no-panic pass,
                   each with the call chain that reaches it
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = None;
    let mut list_reachable = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" if cmd.is_none() => cmd = Some("check"),
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 1;
            }
            "--list-reachable" => list_reachable = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unrecognized argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if cmd != Some("check") {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if list_reachable {
        return match lints::CheckConfig::workspace(&root)
            .and_then(|cfg| lints::reachable_report(&cfg))
        {
            Ok(lines) => {
                for line in &lines {
                    println!("{line}");
                }
                eprintln!(
                    "xtask check: {} function(s) under the no-panic requirement",
                    lines.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let result = lints::CheckConfig::workspace(&root).and_then(|cfg| lints::run_check(&cfg));
    match result {
        Ok(violations) if violations.is_empty() => {
            eprintln!("xtask check: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("xtask check: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the workspace root (the
/// first ancestor whose `Cargo.toml` declares `[workspace]`).
fn find_workspace_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| e.to_string())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace root found above {} (pass --root)",
                    start.display()
                ))
            }
        }
    }
}
