//! `cargo xtask check` — repo-specific invariant lints for the subsum
//! workspace.
//!
//! The `.cargo/config.toml` alias makes `cargo xtask check` run this
//! binary. It is dependency-free on purpose: the lints are lexical (see
//! [`scan`]), so the checker builds and runs in seconds even on a cold
//! cache, and CI can gate on it before the main build.
//!
//! Exit status: 0 when the workspace is clean, 1 when any lint fires,
//! 2 on usage or I/O errors.

mod lints;
mod scan;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask check [--root <dir>]

Runs the workspace invariant lints:
  no-panic         hot-path modules are free of unwrap/expect/panic
  telemetry-names  metric name literals live in subsum_telemetry::names
  derived-state    wire codecs do not touch `lint: derived` fields
  wire-tags        every wire tag constant is encoded AND decoded
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" if cmd.is_none() => cmd = Some("check"),
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unrecognized argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if cmd != Some("check") {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let result = lints::CheckConfig::workspace(&root).and_then(|cfg| lints::run_check(&cfg));
    match result {
        Ok(violations) if violations.is_empty() => {
            eprintln!("xtask check: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("xtask check: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the workspace root (the
/// first ancestor whose `Cargo.toml` declares `[workspace]`).
fn find_workspace_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| e.to_string())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace root found above {} (pass --root)",
                    start.display()
                ))
            }
        }
    }
}
