//! The four workspace lints behind `cargo xtask check`.
//!
//! Each lint is a pure function over [`crate::scan::Scanned`] sources:
//!
//! 1. **no-panic** — hot-path modules (summary/AACS/SACS/id-list
//!    matching, broker routing) must not contain `unwrap()`, `expect()`
//!    or panicking macros outside `#[cfg(test)]`. `assert!` /
//!    `debug_assert!` remain allowed: they state contracts, and the
//!    debug validators depend on them.
//! 2. **telemetry-names** — every string literal passed to
//!    `Count::new`, `Stage::new`, `counter`, `gauge` or `histogram`
//!    must be declared in `subsum_telemetry::names` (test-only names
//!    under the `test.` prefix are exempt).
//! 3. **derived-state** — a field tagged `// lint: derived` is rebuilt,
//!    never serialized; the wire codec files must not reference it.
//! 4. **wire-tags** — a `const TAG_*/KIND_*: u8` wire tag must be
//!    referenced at least twice beyond its declaration (once by the
//!    encoder, once by the decoder), so a tag cannot silently lose its
//!    decode arm.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::scan::{self, Scanned};

/// One lint finding, printed as `file:line: [rule] message`.
#[derive(Debug)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// What to check. All paths are relative to `root`.
pub struct CheckConfig {
    pub root: PathBuf,
    /// Hot-path modules subject to the no-panic rule.
    pub hot_files: Vec<PathBuf>,
    /// The telemetry name registry (`subsum_telemetry::names`), if any.
    pub registry: Option<PathBuf>,
    /// Files scanned for telemetry call sites, wire-tag constants and
    /// `// lint: derived` field tags.
    pub scan_files: Vec<PathBuf>,
    /// Wire codec files that must not reference derived fields.
    pub wire_files: Vec<PathBuf>,
}

impl CheckConfig {
    /// The configuration for this workspace.
    pub fn workspace(root: &Path) -> Result<CheckConfig, String> {
        let hot_files = [
            "crates/core/src/summary.rs",
            "crates/core/src/aacs.rs",
            "crates/core/src/sacs.rs",
            "crates/core/src/idlist.rs",
            "crates/core/src/shard.rs",
            "crates/core/src/snapshot.rs",
            "crates/broker/src/routing.rs",
        ]
        .iter()
        .map(PathBuf::from)
        .collect();

        // Every library source file in the workspace except the xtask
        // crate itself (its fixtures contain deliberate violations).
        let mut scan_files = Vec::new();
        collect_rs(&root.join("src"), root, &mut scan_files)?;
        let crates_dir = root.join("crates");
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("{}: {e}", crates_dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xtask"))
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), root, &mut scan_files)?;
        }

        Ok(CheckConfig {
            root: root.to_path_buf(),
            hot_files,
            registry: Some(PathBuf::from("crates/telemetry/src/names.rs")),
            scan_files,
            wire_files: vec![
                PathBuf::from("crates/core/src/wire.rs"),
                PathBuf::from("crates/types/src/subcodec.rs"),
            ],
        })
    }
}

/// Recursively collects `.rs` files under `dir` (paths made relative to
/// `root`), in sorted order. A missing `dir` is not an error.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

struct Source {
    rel: PathBuf,
    raw: Vec<u8>,
    scanned: Scanned,
}

fn load(root: &Path, rel: &Path) -> Result<Source, String> {
    let full = root.join(rel);
    let raw = std::fs::read(&full).map_err(|e| format!("{}: {e}", full.display()))?;
    let scanned = scan::scan(&raw);
    Ok(Source {
        rel: rel.to_path_buf(),
        raw,
        scanned,
    })
}

/// Runs every lint and returns all findings, sorted by file and line.
pub fn run_check(cfg: &CheckConfig) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();

    for rel in &cfg.hot_files {
        let src = load(&cfg.root, rel)?;
        no_panic(&src, &mut violations);
    }

    let registry = match &cfg.registry {
        Some(rel) => Some(registry_names(&load(&cfg.root, rel)?)),
        None => None,
    };

    let mut derived_fields = Vec::new();
    for rel in &cfg.scan_files {
        let src = load(&cfg.root, rel)?;
        if let Some(names) = &registry {
            telemetry_names(&src, names, &mut violations);
        }
        wire_tags(&src, &mut violations);
        derived_fields.extend(derived_tags(&src));
    }

    for rel in &cfg.wire_files {
        let src = load(&cfg.root, rel)?;
        derived_state(&src, &derived_fields, &mut violations);
    }

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lint 1: panicking constructs in hot-path modules.
fn no_panic(src: &Source, out: &mut Vec<Violation>) {
    let masked = &src.scanned.masked;
    let n = masked.len();

    // `.unwrap(` / `.expect(` method calls. Checking the byte after the
    // method name keeps `unwrap_or*` and `expect_err` out of scope.
    for method in ["unwrap", "expect"] {
        let needle: Vec<u8> = format!(".{method}").into_bytes();
        let mut from = 0;
        while let Some(pos) = scan::find(masked, &needle, from) {
            from = pos + 1;
            let after = pos + needle.len();
            if after < n && is_ident(masked[after]) {
                continue;
            }
            let mut j = after;
            while j < n && masked[j].is_ascii_whitespace() {
                j += 1;
            }
            if j >= n || masked[j] != b'(' {
                continue;
            }
            if src.scanned.in_test_region(pos) {
                continue;
            }
            out.push(Violation {
                file: src.rel.clone(),
                line: scan::line_of(&src.raw, pos),
                rule: "no-panic",
                msg: format!("`.{method}()` in a hot-path module; propagate or rewrite infallibly"),
            });
        }
    }

    // Panicking macros. `assert!`/`debug_assert!` are deliberately not
    // listed: they document contracts and back the debug validators.
    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        let needle = mac.as_bytes();
        let mut from = 0;
        while let Some(pos) = scan::find(masked, needle, from) {
            from = pos + 1;
            if pos > 0 && is_ident(masked[pos - 1]) {
                continue;
            }
            if src.scanned.in_test_region(pos) {
                continue;
            }
            out.push(Violation {
                file: src.rel.clone(),
                line: scan::line_of(&src.raw, pos),
                rule: "no-panic",
                msg: format!("`{mac}` in a hot-path module; return an error or restructure"),
            });
        }
    }
}

/// Every string literal declared in the names registry (outside tests).
fn registry_names(src: &Source) -> BTreeSet<String> {
    src.scanned
        .strings
        .iter()
        .filter(|s| !src.scanned.in_test_region(s.start))
        .map(|s| s.value.clone())
        .collect()
}

/// Lint 2: telemetry name literals outside the registry.
fn telemetry_names(src: &Source, registry: &BTreeSet<String>, out: &mut Vec<Violation>) {
    let masked = &src.scanned.masked;
    let n = masked.len();
    for callee in [
        "Count::new(",
        "Stage::new(",
        "counter(",
        "gauge(",
        "histogram(",
    ] {
        let needle = callee.as_bytes();
        let mut from = 0;
        while let Some(pos) = scan::find(masked, needle, from) {
            from = pos + 1;
            if pos > 0 && is_ident(masked[pos - 1]) {
                continue;
            }
            // Skip whitespace and a leading `&` before the argument —
            // stopping the moment a literal starts, because the mask
            // blanks literal bytes to spaces.
            let mut j = pos + needle.len();
            while j < n
                && src.scanned.string_at(j).is_none()
                && (masked[j].is_ascii_whitespace() || masked[j] == b'&')
            {
                j += 1;
            }
            let Some(lit) = src.scanned.string_at(j) else {
                continue; // a constant or expression, not a literal
            };
            if src.scanned.in_test_region(pos) || lit.value.starts_with("test.") {
                continue;
            }
            if !registry.contains(&lit.value) {
                out.push(Violation {
                    file: src.rel.clone(),
                    line: scan::line_of(&src.raw, pos),
                    rule: "telemetry-names",
                    msg: format!(
                        "telemetry name {:?} is not declared in subsum_telemetry::names; \
                         add a constant there and use it here",
                        lit.value
                    ),
                });
            }
        }
    }
}

/// A field tagged `// lint: derived`, with where it was declared.
#[derive(Debug)]
struct DerivedField {
    name: String,
    file: PathBuf,
    line: usize,
}

/// Collects `// lint: derived` field tags from the *raw* source (the
/// tag lives in a comment, which the mask blanks out).
fn derived_tags(src: &Source) -> Vec<DerivedField> {
    const TAG: &[u8] = b"// lint: derived";
    let mut fields = Vec::new();
    let mut from = 0;
    while let Some(pos) = scan::find(&src.raw, TAG, from) {
        from = pos + TAG.len();
        // The field declaration shares the tag's line: `name: Type, // lint: derived`
        let line_start = src.raw[..pos]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        let decl = &src.raw[line_start..pos];
        // The field name is the identifier right before the first `:`.
        let Some(colon) = decl.iter().position(|&b| b == b':') else {
            continue;
        };
        let mut end = colon;
        while end > 0 && decl[end - 1].is_ascii_whitespace() {
            end -= 1;
        }
        let mut start = end;
        while start > 0 && is_ident(decl[start - 1]) {
            start -= 1;
        }
        if start < end {
            fields.push(DerivedField {
                name: String::from_utf8_lossy(&decl[start..end]).into_owned(),
                file: src.rel.clone(),
                line: scan::line_of(&src.raw, pos),
            });
        }
    }
    fields
}

/// Lint 3: wire codecs referencing derived fields.
fn derived_state(src: &Source, fields: &[DerivedField], out: &mut Vec<Violation>) {
    for field in fields {
        for pos in ident_occurrences(&src.scanned.masked, field.name.as_bytes()) {
            if src.scanned.in_test_region(pos) {
                continue;
            }
            out.push(Violation {
                file: src.rel.clone(),
                line: scan::line_of(&src.raw, pos),
                rule: "derived-state",
                msg: format!(
                    "wire codec references `{}`, tagged `lint: derived` at {}:{}; \
                     derived state is rebuilt after decode, never serialized",
                    field.name,
                    field.file.display(),
                    field.line
                ),
            });
        }
    }
}

/// Lint 4: wire tag constants without both encoder and decoder uses.
fn wire_tags(src: &Source, out: &mut Vec<Violation>) {
    let masked = &src.scanned.masked;
    let needle = b"const ";
    let mut from = 0;
    while let Some(pos) = scan::find(masked, needle, from) {
        from = pos + 1;
        if pos > 0 && is_ident(masked[pos - 1]) {
            continue;
        }
        let mut j = pos + needle.len();
        while j < masked.len() && masked[j].is_ascii_whitespace() {
            j += 1;
        }
        let start = j;
        while j < masked.len() && is_ident(masked[j]) {
            j += 1;
        }
        let name = &masked[start..j];
        if !(name.starts_with(b"TAG_") || name.starts_with(b"KIND_")) {
            continue;
        }
        // Require the declared type to be `u8` — wire tags only.
        let mut k = j;
        while k < masked.len() && masked[k].is_ascii_whitespace() {
            k += 1;
        }
        if k >= masked.len() || masked[k] != b':' {
            continue;
        }
        k += 1;
        while k < masked.len() && masked[k].is_ascii_whitespace() {
            k += 1;
        }
        if !masked[k..].starts_with(b"u8") {
            continue;
        }
        let uses = ident_occurrences(masked, name)
            .into_iter()
            .filter(|&p| p != start)
            .count();
        if uses < 2 {
            out.push(Violation {
                file: src.rel.clone(),
                line: scan::line_of(&src.raw, start),
                rule: "wire-tags",
                msg: format!(
                    "wire tag `{}` has {uses} reference(s) beyond its declaration; \
                     it must appear in both the encoder and the decoder",
                    String::from_utf8_lossy(name)
                ),
            });
        }
    }
}

/// Byte offsets of standalone occurrences of identifier `name`.
fn ident_occurrences(masked: &[u8], name: &[u8]) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = scan::find(masked, name, from) {
        from = pos + 1;
        let before_ok = pos == 0 || !is_ident(masked[pos - 1]);
        let after = pos + name.len();
        let after_ok = after >= masked.len() || !is_ident(masked[after]);
        if before_ok && after_ok {
            hits.push(pos);
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixtures() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
    }

    fn empty_config(root: PathBuf) -> CheckConfig {
        CheckConfig {
            root,
            hot_files: Vec::new(),
            registry: None,
            scan_files: Vec::new(),
            wire_files: Vec::new(),
        }
    }

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn no_panic_flags_seeded_violations_only() {
        let mut cfg = empty_config(fixtures());
        cfg.hot_files = vec![PathBuf::from("no_panic_bad.rs")];
        let v = run_check(&cfg).unwrap();
        // One unwrap, one expect, one panic!, one unreachable! — the
        // unwraps inside `#[cfg(test)]`, comments, strings and the
        // `unwrap_or` call must all pass.
        assert_eq!(rules(&v), vec!["no-panic"; 4], "{v:#?}");
        assert!(v.iter().any(|x| x.msg.contains("unwrap")));
        assert!(v.iter().any(|x| x.msg.contains("expect")));
        assert!(v.iter().any(|x| x.msg.contains("panic!")));
        assert!(v.iter().any(|x| x.msg.contains("unreachable!")));
    }

    #[test]
    fn no_panic_passes_clean_fixture() {
        let mut cfg = empty_config(fixtures());
        cfg.hot_files = vec![PathBuf::from("no_panic_clean.rs")];
        let v = run_check(&cfg).unwrap();
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn telemetry_names_flags_rogue_literal() {
        let mut cfg = empty_config(fixtures());
        cfg.registry = Some(PathBuf::from("names_registry.rs"));
        cfg.scan_files = vec![PathBuf::from("telemetry_bad.rs")];
        let v = run_check(&cfg).unwrap();
        // Only the rogue literal: registry names, constants, `test.`
        // names and test-region literals are all allowed.
        assert_eq!(rules(&v), vec!["telemetry-names"], "{v:#?}");
        assert!(v[0].msg.contains("app.rogue"));
    }

    #[test]
    fn telemetry_names_accepts_registered_chaos_family() {
        let mut cfg = empty_config(fixtures());
        cfg.registry = Some(PathBuf::from("names_registry.rs"));
        cfg.scan_files = vec![PathBuf::from("telemetry_chaos.rs")];
        let v = run_check(&cfg).unwrap();
        // The registered `chaos.*` literals and the constant reference
        // pass; only the seeded unregistered name fires.
        assert_eq!(rules(&v), vec!["telemetry-names"], "{v:#?}");
        assert!(v[0].msg.contains("chaos.unregistered"));
    }

    #[test]
    fn telemetry_names_accepts_registered_trace_family() {
        let mut cfg = empty_config(fixtures());
        cfg.registry = Some(PathBuf::from("names_registry.rs"));
        cfg.scan_files = vec![PathBuf::from("telemetry_trace.rs")];
        let v = run_check(&cfg).unwrap();
        // The registered `trace.*` literals, the constant reference and
        // the test-region literal pass; only the seeded rogue fires.
        assert_eq!(rules(&v), vec!["telemetry-names"], "{v:#?}");
        assert!(v[0].msg.contains("trace.unregistered"));
    }

    #[test]
    fn telemetry_names_accepts_registered_shard_family() {
        let mut cfg = empty_config(fixtures());
        cfg.registry = Some(PathBuf::from("names_registry.rs"));
        cfg.scan_files = vec![PathBuf::from("telemetry_shard.rs")];
        let v = run_check(&cfg).unwrap();
        // The registered `match.shard_*` / `summary.*` literals, the
        // constant reference and the test-region literal pass; only the
        // seeded rogue fires.
        assert_eq!(rules(&v), vec!["telemetry-names"], "{v:#?}");
        assert!(v[0].msg.contains("summary.shard_unregistered"));
    }

    #[test]
    fn derived_state_flags_wire_reference() {
        let mut cfg = empty_config(fixtures());
        cfg.scan_files = vec![PathBuf::from("derived_struct.rs")];
        cfg.wire_files = vec![PathBuf::from("derived_wire_bad.rs")];
        let v = run_check(&cfg).unwrap();
        // One anchor_index reference, two intern-table references and one
        // required-counts reference; the comment mentions must not fire.
        assert_eq!(rules(&v), vec!["derived-state"; 4], "{v:#?}");
        assert!(v.iter().any(|x| x.msg.contains("`anchor_index`")));
        assert!(v.iter().any(|x| x.msg.contains("`intern`")));
        assert!(v.iter().any(|x| x.msg.contains("`required`")));
    }

    #[test]
    fn derived_state_passes_clean_wire_file() {
        let mut cfg = empty_config(fixtures());
        cfg.scan_files = vec![PathBuf::from("derived_struct.rs")];
        cfg.wire_files = vec![PathBuf::from("derived_wire_clean.rs")];
        let v = run_check(&cfg).unwrap();
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn wire_tags_flags_unpaired_constant() {
        let mut cfg = empty_config(fixtures());
        cfg.scan_files = vec![PathBuf::from("wire_tags_bad.rs")];
        let v = run_check(&cfg).unwrap();
        assert_eq!(rules(&v), vec!["wire-tags"], "{v:#?}");
        assert!(v[0].msg.contains("TAG_ORPHAN"));
    }

    #[test]
    fn real_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
        let cfg = CheckConfig::workspace(&root).unwrap();
        assert!(!cfg.scan_files.is_empty());
        let v = run_check(&cfg).unwrap();
        assert!(
            v.is_empty(),
            "workspace lints failed:\n{}",
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
