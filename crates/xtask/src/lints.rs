//! The workspace lints behind `cargo xtask check`.
//!
//! Every pass works on the token stream produced by [`crate::lex`] (so
//! comments, doc examples and string literals can never false-positive)
//! and, where call structure matters, on the conservative call graph of
//! [`crate::graph`]:
//!
//! 1. **no-panic** — the no-panic requirement seeds at the hot-path
//!    roots (`match_event_into`, `query_into`, `route_event*`,
//!    `publish_batch`, the `SnapshotCell` read path, the wire decode
//!    entry points) and propagates transitively through the call graph:
//!    any reachable function must not contain `.unwrap()`, `.expect()`
//!    or panicking macros outside `#[cfg(test)]`. `assert!` /
//!    `debug_assert!` remain allowed: they state contracts, and the
//!    debug validators depend on them.
//! 2. **wire-robust** — functions in the wire codec files reachable
//!    from a decode entry point face untrusted bytes: slice indexing
//!    and `+`/`-`/`*` arithmetic near length-ish identifiers must carry
//!    a `// BOUND:` justification comment stating the bound.
//! 3. **atomic-policy** — every `Ordering::*` use in a file listed in
//!    the checked-in policy table must be in that file's allowed set,
//!    so weakening the epoch protocol fails `xtask check` before tsan
//!    ever runs.
//! 4. **unsafe-audit** — `unsafe` may only appear in explicitly
//!    allowlisted modules, and every `unsafe` block or `unsafe impl`
//!    must carry a `// SAFETY:` comment.
//! 5. **telemetry-names** — every string literal passed to
//!    `Count::new`, `Stage::new`, `counter`, `gauge` or `histogram`
//!    must be declared in `subsum_telemetry::names` (test-only names
//!    under the `test.` prefix are exempt).
//! 6. **derived-state** — a field tagged `// lint: derived` is rebuilt,
//!    never serialized; the wire codec files must not reference it.
//! 7. **wire-tags** — a `const TAG_*/KIND_*: u8` wire tag must be
//!    referenced at least twice beyond its declaration *and* appear in
//!    a `match` arm pattern, so a tag cannot silently lose its decode
//!    arm.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::graph::CallGraph;
use crate::lex::{self, Lexed, TokenKind};

/// One lint finding, printed as `file:line: [rule] message`.
#[derive(Debug)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// What to check. All paths are relative to `root`.
pub struct CheckConfig {
    pub root: PathBuf,
    /// Library sources: the call graph and most passes run over these.
    pub scan_files: Vec<PathBuf>,
    /// The telemetry name registry (`subsum_telemetry::names`), if any.
    pub registry: Option<PathBuf>,
    /// Wire codec files that must not reference derived fields.
    pub wire_files: Vec<PathBuf>,
    /// Files whose decode-reachable functions face untrusted bytes.
    pub wire_robust_files: Vec<PathBuf>,
    /// Root specs seeding the transitive no-panic requirement.
    pub panic_roots: Vec<String>,
    /// Root specs naming the wire decode entry points.
    pub wire_roots: Vec<String>,
    /// The atomic-ordering policy table, if any.
    pub atomics_policy: Option<PathBuf>,
    /// Modules allowed to contain `unsafe` at all.
    pub unsafe_allow: Vec<PathBuf>,
    /// Extra files (integration tests, the xtask sources themselves)
    /// audited for unsafe on top of `scan_files`.
    pub unsafe_extra: Vec<PathBuf>,
}

impl CheckConfig {
    /// The configuration for this workspace.
    pub fn workspace(root: &Path) -> Result<CheckConfig, String> {
        // Every library source file in the workspace except the xtask
        // crate itself (its fixtures contain deliberate violations).
        let mut scan_files = Vec::new();
        collect_rs(&root.join("src"), root, &mut scan_files)?;
        let crates_dir = root.join("crates");
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("{}: {e}", crates_dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xtask"))
            .collect();
        members.sort();
        let mut unsafe_extra = Vec::new();
        for member in &members {
            collect_rs(&member.join("src"), root, &mut scan_files)?;
            collect_rs(&member.join("tests"), root, &mut unsafe_extra)?;
        }
        collect_rs(&root.join("tests"), root, &mut unsafe_extra)?;
        collect_rs(&root.join("crates/xtask/src"), root, &mut unsafe_extra)?;

        Ok(CheckConfig {
            root: root.to_path_buf(),
            scan_files,
            registry: Some(PathBuf::from("crates/telemetry/src/names.rs")),
            wire_files: vec![
                PathBuf::from("crates/core/src/wire.rs"),
                PathBuf::from("crates/types/src/subcodec.rs"),
            ],
            wire_robust_files: vec![
                PathBuf::from("crates/core/src/digest.rs"),
                PathBuf::from("crates/core/src/wire.rs"),
                PathBuf::from("crates/types/src/codec.rs"),
                PathBuf::from("crates/types/src/id.rs"),
                PathBuf::from("crates/types/src/subcodec.rs"),
                PathBuf::from("crates/broker/src/snapshot.rs"),
                PathBuf::from("crates/transport/src/frame.rs"),
                PathBuf::from("crates/transport/src/msg.rs"),
            ],
            panic_roots: vec![
                "match_event_into".into(),
                "probe_into".into(),
                "query_into".into(),
                "route_event*".into(),
                "publish_batch".into(),
                "SnapshotReader::pin".into(),
                "SnapshotGuard::deref".into(),
                "decode".into(),
                "decode_bytes".into(),
                "from_bytes".into(),
                "next_frame".into(),
                "decode_all".into(),
                "decode_frame".into(),
            ],
            wire_roots: vec![
                "decode".into(),
                "decode_bytes".into(),
                "from_bytes".into(),
                "next_frame".into(),
                "decode_all".into(),
                "decode_frame".into(),
            ],
            atomics_policy: Some(PathBuf::from("crates/xtask/atomics.policy")),
            unsafe_allow: vec![
                PathBuf::from("crates/core/src/snapshot.rs"),
                PathBuf::from("crates/core/tests/zero_alloc.rs"),
                PathBuf::from("crates/telemetry/tests/zero_alloc.rs"),
            ],
            unsafe_extra,
        })
    }
}

/// Recursively collects `.rs` files under `dir` (paths made relative to
/// `root`), in sorted order. A missing `dir` is not an error.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// One loaded-and-lexed source file.
pub struct Source {
    pub rel: PathBuf,
    pub lexed: Lexed,
}

fn load(root: &Path, rel: &Path) -> Result<Source, String> {
    let full = root.join(rel);
    let raw = std::fs::read(&full).map_err(|e| format!("{}: {e}", full.display()))?;
    Ok(Source {
        rel: rel.to_path_buf(),
        lexed: lex::lex(&raw),
    })
}

/// Runs every lint and returns all findings, sorted by file and line.
pub fn run_check(cfg: &CheckConfig) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();

    let sources: Vec<Source> = cfg
        .scan_files
        .iter()
        .map(|rel| load(&cfg.root, rel))
        .collect::<Result<_, _>>()?;
    let lexed_refs: Vec<&Lexed> = sources.iter().map(|s| &s.lexed).collect();
    let graph = CallGraph::build(&lexed_refs);

    no_panic(cfg, &sources, &graph, &mut violations);
    wire_robust(cfg, &sources, &graph, &mut violations);
    atomic_policy(cfg, &mut violations)?;
    unsafe_audit(cfg, &sources, &mut violations)?;

    let registry = match &cfg.registry {
        Some(rel) => Some(registry_names(&load(&cfg.root, rel)?)),
        None => None,
    };
    let mut derived_fields = Vec::new();
    for src in &sources {
        if let Some(names) = &registry {
            telemetry_names(src, names, &mut violations);
        }
        wire_tags(src, &mut violations);
        derived_fields.extend(derived_tags(src));
    }
    for rel in &cfg.wire_files {
        let src = load(&cfg.root, rel)?;
        derived_state(&src, &derived_fields, &mut violations);
    }

    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    violations
        .dedup_by(|a, b| (&a.file, a.line, a.rule, &a.msg) == (&b.file, b.line, b.rule, &b.msg));
    Ok(violations)
}

/// The functions reachable from the configured no-panic roots, as
/// `(chain, file, line)` — used by `--list-reachable`.
pub fn reachable_report(cfg: &CheckConfig) -> Result<Vec<String>, String> {
    let sources: Vec<Source> = cfg
        .scan_files
        .iter()
        .map(|rel| load(&cfg.root, rel))
        .collect::<Result<_, _>>()?;
    let lexed_refs: Vec<&Lexed> = sources.iter().map(|s| &s.lexed).collect();
    let graph = CallGraph::build(&lexed_refs);
    let mut seeds = Vec::new();
    for spec in &cfg.panic_roots {
        seeds.extend(graph.roots(spec));
    }
    let parents = graph.reach(&seeds);
    Ok(parents
        .keys()
        .map(|&idx| {
            let f = &graph.fns[idx];
            format!(
                "{}:{}: {}",
                sources[f.file].rel.display(),
                sources[f.file].lexed.line(f.name_tok),
                graph.chain(&parents, idx)
            )
        })
        .collect())
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Lint 1: panicking constructs in any function reachable from a
/// hot-path root.
fn no_panic(cfg: &CheckConfig, sources: &[Source], graph: &CallGraph, out: &mut Vec<Violation>) {
    let mut seeds = Vec::new();
    for spec in &cfg.panic_roots {
        seeds.extend(graph.roots(spec));
    }
    let parents = graph.reach(&seeds);
    for &idx in parents.keys() {
        let f = &graph.fns[idx];
        let Some((lo, hi)) = f.body else { continue };
        let src = &sources[f.file];
        let chain = graph.chain(&parents, idx);
        for (tok, what) in panic_sites(&src.lexed, lo, hi) {
            out.push(Violation {
                file: src.rel.clone(),
                line: src.lexed.line(tok),
                rule: "no-panic",
                msg: format!(
                    "{what} in `{}`, reachable from a hot-path root ({chain}); \
                     propagate an error or rewrite infallibly",
                    f.name
                ),
            });
        }
    }
}

/// Panicking constructs in the token range `[lo, hi]`:
/// `.unwrap()` / `.expect()` calls and panicking macros.
fn panic_sites(lexed: &Lexed, lo: usize, hi: usize) -> Vec<(usize, String)> {
    let toks = &lexed.tokens;
    let mut sites = Vec::new();
    for i in lo..=hi.min(toks.len().saturating_sub(1)) {
        if lexed.in_test(i) || lexed.in_attr(i) {
            continue;
        }
        if lexed.is_punct(i, b'.')
            && i + 2 <= hi
            && (lexed.is_ident(i + 1, "unwrap") || lexed.is_ident(i + 1, "expect"))
            && matches!(toks[i + 2].kind, TokenKind::Open(b'('))
        {
            let name = String::from_utf8_lossy(lexed.text(i + 1)).into_owned();
            sites.push((i + 1, format!("`.{name}()`")));
        }
        if matches!(toks[i].kind, TokenKind::Ident)
            && PANIC_MACROS.iter().any(|m| lexed.is_ident(i, m))
            && i < hi
            && lexed.is_punct(i + 1, b'!')
            && !(i + 2 <= hi && lexed.is_punct(i + 2, b'='))
        {
            let name = String::from_utf8_lossy(lexed.text(i)).into_owned();
            sites.push((i, format!("`{name}!`")));
        }
    }
    sites
}

/// Lint 2: unguarded indexing/arithmetic in decode-reachable functions
/// of the wire codec files.
fn wire_robust(cfg: &CheckConfig, sources: &[Source], graph: &CallGraph, out: &mut Vec<Violation>) {
    let mut seeds = Vec::new();
    for spec in &cfg.wire_roots {
        seeds.extend(graph.roots(spec));
    }
    let parents = graph.reach(&seeds);
    for &idx in parents.keys() {
        let f = &graph.fns[idx];
        let src = &sources[f.file];
        if !cfg.wire_robust_files.contains(&src.rel) {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let lexed = &src.lexed;
        let toks = &lexed.tokens;
        for i in lo..=hi.min(toks.len().saturating_sub(1)) {
            if lexed.in_test(i) || lexed.in_attr(i) {
                continue;
            }
            // Slice/array indexing: `expr[...]` panics on out-of-range.
            if matches!(toks[i].kind, TokenKind::Open(b'['))
                && i > 0
                && matches!(
                    toks[i - 1].kind,
                    TokenKind::Ident | TokenKind::Close(b')') | TokenKind::Close(b']')
                )
                && !lexed.comment_marker_near(i, "BOUND:", 2)
            {
                out.push(Violation {
                    file: src.rel.clone(),
                    line: lexed.line(i),
                    rule: "wire-robust",
                    msg: format!(
                        "slice indexing in `{}`, reachable from a wire decode entry point \
                         ({}); use a checked accessor or state the bound in a `// BOUND:` comment",
                        f.name,
                        graph.chain(&parents, idx)
                    ),
                });
            }
            // Unchecked arithmetic near a wire-derived length.
            if let TokenKind::Punct(op @ (b'+' | b'-' | b'*')) = toks[i].kind {
                // Binary only: the left neighbor must end an expression.
                let binary = i > 0
                    && matches!(
                        toks[i - 1].kind,
                        TokenKind::Ident | TokenKind::Num | TokenKind::Close(_)
                    );
                // `->` is not arithmetic.
                let arrow = op == b'-'
                    && i + 1 < toks.len()
                    && lexed.is_punct(i + 1, b'>')
                    && toks[i].end == toks[i + 1].start;
                if binary
                    && !arrow
                    && operand_is_lengthish(lexed, i, lo, hi)
                    && !lexed.comment_marker_near(i, "BOUND:", 2)
                {
                    out.push(Violation {
                        file: src.rel.clone(),
                        line: lexed.line(i),
                        rule: "wire-robust",
                        msg: format!(
                            "`{}` on a length-like operand in `{}`, reachable from a wire \
                             decode entry point; use checked_/saturating_ arithmetic or state \
                             the bound in a `// BOUND:` comment",
                            op as char, f.name
                        ),
                    });
                }
            }
        }
    }
}

/// Whether an identifier within a four-token window around the operator
/// at `i` looks like a length (`len`, `count`, `size` in the name).
fn operand_is_lengthish(lexed: &Lexed, i: usize, lo: usize, hi: usize) -> bool {
    let from = i.saturating_sub(4).max(lo);
    let to = (i + 4).min(hi);
    (from..=to).any(|j| {
        matches!(lexed.tokens[j].kind, TokenKind::Ident) && {
            let text = lexed.text(j).to_ascii_lowercase();
            [&b"len"[..], b"count", b"size"]
                .iter()
                .any(|m| lex::find(&text, m, 0).is_some())
        }
    })
}

const ORDERINGS: &[&str] = &["Relaxed", "Release", "Acquire", "AcqRel", "SeqCst"];

/// Lint 3: atomic-ordering uses against the checked-in policy table.
///
/// Policy file format (one entry per line, `#` comments):
/// ```text
/// <relative path>: <Ordering> [<Ordering> ...]
/// <relative path>: none
/// ```
fn atomic_policy(cfg: &CheckConfig, out: &mut Vec<Violation>) -> Result<(), String> {
    let Some(policy_rel) = &cfg.atomics_policy else {
        return Ok(());
    };
    let policy_path = cfg.root.join(policy_rel);
    let text = std::fs::read_to_string(&policy_path)
        .map_err(|e| format!("{}: {e}", policy_path.display()))?;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (path, allowed) = line.split_once(':').ok_or_else(|| {
            format!(
                "{}:{}: malformed policy line (expected `path: orderings`)",
                policy_rel.display(),
                lineno + 1
            )
        })?;
        let rel = PathBuf::from(path.trim());
        let allowed: BTreeSet<&str> = match allowed.trim() {
            "none" => BTreeSet::new(),
            list => {
                let set: BTreeSet<&str> = list.split_whitespace().collect();
                if let Some(bad) = set.iter().find(|o| !ORDERINGS.contains(*o)) {
                    return Err(format!(
                        "{}:{}: unknown ordering `{bad}` in policy",
                        policy_rel.display(),
                        lineno + 1
                    ));
                }
                set
            }
        };
        let src = load(&cfg.root, &rel)?;
        for i in 0..src.lexed.tokens.len() {
            if src.lexed.in_attr(i) {
                continue;
            }
            let Some(ord) = ORDERINGS.iter().find(|o| src.lexed.is_ident(i, o)) else {
                continue;
            };
            if !allowed.contains(*ord) {
                out.push(Violation {
                    file: rel.clone(),
                    line: src.lexed.line(i),
                    rule: "atomic-policy",
                    msg: format!(
                        "`Ordering::{ord}` is not in the declared policy for this file \
                         (allowed: {}); update {} only with a written protocol argument",
                        if allowed.is_empty() {
                            "none".to_string()
                        } else {
                            allowed.iter().cloned().collect::<Vec<_>>().join(" ")
                        },
                        policy_rel.display()
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Lint 4: `unsafe` outside allowlisted modules, or without a
/// `// SAFETY:` comment on blocks and impls.
fn unsafe_audit(
    cfg: &CheckConfig,
    sources: &[Source],
    out: &mut Vec<Violation>,
) -> Result<(), String> {
    let extra: Vec<Source> = cfg
        .unsafe_extra
        .iter()
        .map(|rel| load(&cfg.root, rel))
        .collect::<Result<_, _>>()?;
    for src in sources.iter().chain(extra.iter()) {
        let lexed = &src.lexed;
        let allowed = cfg.unsafe_allow.contains(&src.rel);
        for i in 0..lexed.tokens.len() {
            if !lexed.is_ident(i, "unsafe") || lexed.in_attr(i) {
                continue;
            }
            if !allowed {
                out.push(Violation {
                    file: src.rel.clone(),
                    line: lexed.line(i),
                    rule: "unsafe-audit",
                    msg: "`unsafe` in a module not on the unsafe allowlist; \
                          move the code into an allowlisted module or extend the \
                          allowlist with a written justification"
                        .to_string(),
                });
                continue;
            }
            let next = i + 1;
            let needs_safety = next < lexed.tokens.len()
                && (matches!(lexed.tokens[next].kind, TokenKind::Open(b'{'))
                    || lexed.is_ident(next, "impl"));
            if needs_safety && !lexed.comment_marker_near(i, "SAFETY:", 3) {
                out.push(Violation {
                    file: src.rel.clone(),
                    line: lexed.line(i),
                    rule: "unsafe-audit",
                    msg: "`unsafe` block/impl without a `// SAFETY:` comment stating \
                          the invariant it relies on"
                        .to_string(),
                });
            }
        }
    }
    Ok(())
}

/// Every string literal declared in the names registry (outside tests).
fn registry_names(src: &Source) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..src.lexed.tokens.len() {
        if let TokenKind::Str(v) = &src.lexed.tokens[i].kind {
            if !src.lexed.in_test(i) {
                names.insert(v.clone());
            }
        }
    }
    names
}

/// Lint 5: telemetry name literals outside the registry.
fn telemetry_names(src: &Source, registry: &BTreeSet<String>, out: &mut Vec<Violation>) {
    let lexed = &src.lexed;
    let toks = &lexed.tokens;
    let len = toks.len();
    for i in 0..len {
        if !matches!(toks[i].kind, TokenKind::Ident) || lexed.in_attr(i) {
            continue;
        }
        // `Count::new(` / `Stage::new(`, or bare `counter(` / `gauge(`
        // / `histogram(`.
        let open = if (lexed.is_ident(i, "Count") || lexed.is_ident(i, "Stage"))
            && i + 4 < len
            && lexed.is_path_sep(i + 1)
            && lexed.is_ident(i + 3, "new")
            && matches!(toks[i + 4].kind, TokenKind::Open(b'('))
        {
            i + 4
        } else if (lexed.is_ident(i, "counter")
            || lexed.is_ident(i, "gauge")
            || lexed.is_ident(i, "histogram"))
            && i + 1 < len
            && matches!(toks[i + 1].kind, TokenKind::Open(b'('))
        {
            i + 1
        } else {
            continue;
        };
        // The first argument, skipping a leading `&`.
        let mut j = open + 1;
        while j < len && lexed.is_punct(j, b'&') {
            j += 1;
        }
        let Some(TokenKind::Str(value)) = toks.get(j).map(|t| &t.kind) else {
            continue; // a constant or expression, not a literal
        };
        if lexed.in_test(i) || value.starts_with("test.") {
            continue;
        }
        if !registry.contains(value) {
            out.push(Violation {
                file: src.rel.clone(),
                line: lexed.line(i),
                rule: "telemetry-names",
                msg: format!(
                    "telemetry name {value:?} is not declared in subsum_telemetry::names; \
                     add a constant there and use it here"
                ),
            });
        }
    }
}

/// A field tagged `// lint: derived`, with where it was declared.
#[derive(Debug)]
struct DerivedField {
    name: String,
    file: PathBuf,
    line: usize,
}

/// Collects `// lint: derived` field tags from the raw source (the tag
/// lives in a comment, which never becomes a token).
fn derived_tags(src: &Source) -> Vec<DerivedField> {
    const TAG: &[u8] = b"// lint: derived";
    let raw = &src.lexed.src;
    let mut fields = Vec::new();
    let mut from = 0;
    while let Some(pos) = lex::find(raw, TAG, from) {
        from = pos + TAG.len();
        // The field declaration shares the tag's line:
        // `name: Type, // lint: derived`
        let line_start = raw[..pos]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        let decl = &raw[line_start..pos];
        let Some(colon) = decl.iter().position(|&b| b == b':') else {
            continue;
        };
        let mut end = colon;
        while end > 0 && decl[end - 1].is_ascii_whitespace() {
            end -= 1;
        }
        let mut start = end;
        while start > 0 && (decl[start - 1].is_ascii_alphanumeric() || decl[start - 1] == b'_') {
            start -= 1;
        }
        if start < end {
            fields.push(DerivedField {
                name: String::from_utf8_lossy(&decl[start..end]).into_owned(),
                file: src.rel.clone(),
                line: lex::line_of(raw, pos),
            });
        }
    }
    fields
}

/// Lint 6: wire codecs referencing derived fields.
fn derived_state(src: &Source, fields: &[DerivedField], out: &mut Vec<Violation>) {
    let lexed = &src.lexed;
    for field in fields {
        for i in 0..lexed.tokens.len() {
            if !lexed.is_ident(i, &field.name) || lexed.in_test(i) || lexed.in_attr(i) {
                continue;
            }
            out.push(Violation {
                file: src.rel.clone(),
                line: lexed.line(i),
                rule: "derived-state",
                msg: format!(
                    "wire codec references `{}`, tagged `lint: derived` at {}:{}; \
                     derived state is rebuilt after decode, never serialized",
                    field.name,
                    field.file.display(),
                    field.line
                ),
            });
        }
    }
}

/// Lint 7: wire tag constants must be used by both sides and appear in
/// a decode `match` arm pattern.
fn wire_tags(src: &Source, out: &mut Vec<Violation>) {
    let lexed = &src.lexed;
    let toks = &lexed.tokens;
    let len = toks.len();
    for i in 0..len {
        if !lexed.is_ident(i, "const") || lexed.in_attr(i) {
            continue;
        }
        // `const TAG_X: u8`
        if i + 3 >= len || !matches!(toks[i + 1].kind, TokenKind::Ident) {
            continue;
        }
        let name = lexed.text(i + 1).to_vec();
        if !(name.starts_with(b"TAG_") || name.starts_with(b"KIND_")) {
            continue;
        }
        if !lexed.is_punct(i + 2, b':') || !lexed.is_ident(i + 3, "u8") {
            continue;
        }
        let decl_tok = i + 1;
        let uses: Vec<usize> = (0..len)
            .filter(|&j| {
                j != decl_tok
                    && matches!(toks[j].kind, TokenKind::Ident)
                    && lexed.text(j) == name.as_slice()
            })
            .collect();
        let display = String::from_utf8_lossy(&name).into_owned();
        if uses.len() < 2 {
            out.push(Violation {
                file: src.rel.clone(),
                line: lexed.line(decl_tok),
                rule: "wire-tags",
                msg: format!(
                    "wire tag `{display}` has {} reference(s) beyond its declaration; \
                     it must appear in both the encoder and the decoder",
                    uses.len()
                ),
            });
            continue;
        }
        if !uses.iter().any(|&j| in_match_arm_pattern(lexed, j)) {
            out.push(Violation {
                file: src.rel.clone(),
                line: lexed.line(decl_tok),
                rule: "wire-tags",
                msg: format!(
                    "wire tag `{display}` never appears in a `match` arm pattern; \
                     the decoder must match on it explicitly"
                ),
            });
        }
    }
}

/// Whether the token at `j` sits in pattern position of a match arm:
/// walking forward (jumping over delimited groups) reaches `=>` before
/// any `,`, `;`, `=` or a group close.
fn in_match_arm_pattern(lexed: &Lexed, j: usize) -> bool {
    let toks = &lexed.tokens;
    let len = toks.len();
    let mut k = j + 1;
    while k < len {
        match toks[k].kind {
            TokenKind::Open(_) => {
                if toks[k].mat == usize::MAX {
                    return false;
                }
                k = toks[k].mat + 1;
                continue;
            }
            TokenKind::Close(_) => return false,
            TokenKind::Punct(b'=') => return lexed.is_fat_arrow(k),
            TokenKind::Punct(b',') | TokenKind::Punct(b';') => return false,
            _ => {}
        }
        k += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixtures() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
    }

    fn empty_config(root: PathBuf) -> CheckConfig {
        CheckConfig {
            root,
            scan_files: Vec::new(),
            registry: None,
            wire_files: Vec::new(),
            wire_robust_files: Vec::new(),
            panic_roots: Vec::new(),
            wire_roots: Vec::new(),
            atomics_policy: None,
            unsafe_allow: Vec::new(),
            unsafe_extra: Vec::new(),
        }
    }

    fn panic_config(files: &[&str]) -> CheckConfig {
        let mut cfg = empty_config(fixtures());
        cfg.scan_files = files.iter().map(PathBuf::from).collect();
        cfg.panic_roots = vec![
            "match_event_into".into(),
            "query_into".into(),
            "route_event*".into(),
            "publish_batch".into(),
        ];
        cfg
    }

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn no_panic_flags_seeded_violations_only() {
        let cfg = panic_config(&["no_panic_bad.rs"]);
        let v = run_check(&cfg).unwrap();
        // One unwrap, one expect, one panic!, one unreachable! — the
        // unwraps inside `#[cfg(test)]`, comments, strings and the
        // `unwrap_or` call must all pass.
        assert_eq!(rules(&v), vec!["no-panic"; 4], "{v:#?}");
        assert!(v.iter().any(|x| x.msg.contains("unwrap")));
        assert!(v.iter().any(|x| x.msg.contains("expect")));
        assert!(v.iter().any(|x| x.msg.contains("panic!")));
        assert!(v.iter().any(|x| x.msg.contains("unreachable!")));
    }

    #[test]
    fn no_panic_passes_clean_fixture() {
        let cfg = panic_config(&["no_panic_clean.rs"]);
        let v = run_check(&cfg).unwrap();
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn no_panic_propagates_transitively() {
        let cfg = panic_config(&["callgraph_transitive.rs"]);
        let v = run_check(&cfg).unwrap();
        // The root is clean; the panic hides two calls deep, and one
        // more in a method resolved conservatively by name. The
        // unreachable sibling's unwrap must NOT fire.
        assert_eq!(rules(&v), vec!["no-panic"; 2], "{v:#?}");
        assert!(v.iter().any(|x| x.msg.contains("deep_helper")));
        assert!(v.iter().any(|x| x.msg.contains("lookup")));
        assert!(v.iter().all(|x| !x.msg.contains("unreachable_sibling")));
        // The chain names the seeding root.
        assert!(v.iter().all(|x| x.msg.contains("match_event_into")));
    }

    #[test]
    fn wire_robust_flags_indexing_and_len_arith() {
        let mut cfg = empty_config(fixtures());
        cfg.scan_files = vec![PathBuf::from("wire_robust_bad.rs")];
        cfg.wire_robust_files = cfg.scan_files.clone();
        cfg.wire_roots = vec!["decode".into(), "from_bytes".into()];
        let v = run_check(&cfg).unwrap();
        // One unguarded index, one len-multiply; the BOUND-commented
        // index and the helper not reachable from decode stay clean.
        assert_eq!(rules(&v), vec!["wire-robust"; 2], "{v:#?}");
        assert!(v.iter().any(|x| x.msg.contains("slice indexing")));
        assert!(v.iter().any(|x| x.msg.contains("length-like")));
    }

    #[test]
    fn atomic_policy_flags_downgraded_ordering() {
        let mut cfg = empty_config(fixtures());
        cfg.atomics_policy = Some(PathBuf::from("atomics_bad.policy"));
        let v = run_check(&cfg).unwrap();
        // `atomics_bad.rs` stores the epoch with Relaxed; the policy
        // allows only SeqCst. The two SeqCst uses pass.
        assert_eq!(rules(&v), vec!["atomic-policy"], "{v:#?}");
        assert!(v[0].msg.contains("Relaxed"));
    }

    #[test]
    fn atomic_policy_passes_conforming_file() {
        let mut cfg = empty_config(fixtures());
        cfg.atomics_policy = Some(PathBuf::from("atomics_clean.policy"));
        let v = run_check(&cfg).unwrap();
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn atomic_policy_rejects_unknown_ordering_in_policy() {
        let mut cfg = empty_config(fixtures());
        cfg.atomics_policy = Some(PathBuf::from("atomics_malformed.policy"));
        let err = run_check(&cfg).unwrap_err();
        assert!(err.contains("unknown ordering"), "{err}");
    }

    #[test]
    fn unsafe_audit_flags_uncommented_and_unlisted() {
        let mut cfg = empty_config(fixtures());
        cfg.scan_files = vec![
            PathBuf::from("unsafe_bad.rs"),
            PathBuf::from("unsafe_unlisted.rs"),
        ];
        cfg.unsafe_allow = vec![PathBuf::from("unsafe_bad.rs")];
        let v = run_check(&cfg).unwrap();
        // unsafe_bad.rs: one block without SAFETY (the commented one
        // passes). unsafe_unlisted.rs: one module-allowlist violation.
        assert_eq!(rules(&v), vec!["unsafe-audit"; 2], "{v:#?}");
        assert!(v.iter().any(|x| x.msg.contains("SAFETY")));
        assert!(v.iter().any(|x| x.msg.contains("allowlist")));
    }

    #[test]
    fn telemetry_names_flags_rogue_literal() {
        let mut cfg = empty_config(fixtures());
        cfg.registry = Some(PathBuf::from("names_registry.rs"));
        cfg.scan_files = vec![PathBuf::from("telemetry_bad.rs")];
        let v = run_check(&cfg).unwrap();
        // Only the rogue literal: registry names, constants, `test.`
        // names and test-region literals are all allowed.
        assert_eq!(rules(&v), vec!["telemetry-names"], "{v:#?}");
        assert!(v[0].msg.contains("app.rogue"));
    }

    #[test]
    fn telemetry_names_accepts_registered_chaos_family() {
        let mut cfg = empty_config(fixtures());
        cfg.registry = Some(PathBuf::from("names_registry.rs"));
        cfg.scan_files = vec![PathBuf::from("telemetry_chaos.rs")];
        let v = run_check(&cfg).unwrap();
        assert_eq!(rules(&v), vec!["telemetry-names"], "{v:#?}");
        assert!(v[0].msg.contains("chaos.unregistered"));
    }

    #[test]
    fn telemetry_names_accepts_registered_trace_family() {
        let mut cfg = empty_config(fixtures());
        cfg.registry = Some(PathBuf::from("names_registry.rs"));
        cfg.scan_files = vec![PathBuf::from("telemetry_trace.rs")];
        let v = run_check(&cfg).unwrap();
        assert_eq!(rules(&v), vec!["telemetry-names"], "{v:#?}");
        assert!(v[0].msg.contains("trace.unregistered"));
    }

    #[test]
    fn telemetry_names_accepts_registered_shard_family() {
        let mut cfg = empty_config(fixtures());
        cfg.registry = Some(PathBuf::from("names_registry.rs"));
        cfg.scan_files = vec![PathBuf::from("telemetry_shard.rs")];
        let v = run_check(&cfg).unwrap();
        assert_eq!(rules(&v), vec!["telemetry-names"], "{v:#?}");
        assert!(v[0].msg.contains("summary.shard_unregistered"));
    }

    #[test]
    fn telemetry_names_accepts_registered_transport_family() {
        let mut cfg = empty_config(fixtures());
        cfg.registry = Some(PathBuf::from("names_registry.rs"));
        cfg.scan_files = vec![PathBuf::from("telemetry_transport.rs")];
        let v = run_check(&cfg).unwrap();
        assert_eq!(rules(&v), vec!["telemetry-names"], "{v:#?}");
        assert!(v[0].msg.contains("transport.unregistered"));
    }

    #[test]
    fn derived_state_flags_wire_reference() {
        let mut cfg = empty_config(fixtures());
        cfg.scan_files = vec![PathBuf::from("derived_struct.rs")];
        cfg.wire_files = vec![PathBuf::from("derived_wire_bad.rs")];
        let v = run_check(&cfg).unwrap();
        // One anchor_index reference, two intern-table references, one
        // required-counts reference and one compiled-plan reference; the
        // comment mentions must not fire.
        assert_eq!(rules(&v), vec!["derived-state"; 5], "{v:#?}");
        assert!(v.iter().any(|x| x.msg.contains("`anchor_index`")));
        assert!(v.iter().any(|x| x.msg.contains("`intern`")));
        assert!(v.iter().any(|x| x.msg.contains("`required`")));
        assert!(v.iter().any(|x| x.msg.contains("`plan`")));
    }

    #[test]
    fn derived_state_passes_clean_wire_file() {
        let mut cfg = empty_config(fixtures());
        cfg.scan_files = vec![PathBuf::from("derived_struct.rs")];
        cfg.wire_files = vec![PathBuf::from("derived_wire_clean.rs")];
        let v = run_check(&cfg).unwrap();
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn wire_tags_flags_unpaired_constant() {
        let mut cfg = empty_config(fixtures());
        cfg.scan_files = vec![PathBuf::from("wire_tags_bad.rs")];
        let v = run_check(&cfg).unwrap();
        assert_eq!(rules(&v), vec!["wire-tags"], "{v:#?}");
        assert!(v[0].msg.contains("TAG_ORPHAN"));
    }

    #[test]
    fn wire_tags_flags_tag_missing_from_decode_match() {
        let mut cfg = empty_config(fixtures());
        cfg.scan_files = vec![PathBuf::from("wire_tags_no_match_arm.rs")];
        let v = run_check(&cfg).unwrap();
        // TAG_SKIPPED is referenced on both sides but the decoder
        // compares with `==` instead of matching; TAG_MATCHED passes.
        assert_eq!(rules(&v), vec!["wire-tags"], "{v:#?}");
        assert!(v[0].msg.contains("TAG_SKIPPED"));
        assert!(v[0].msg.contains("match"));
    }

    #[test]
    fn real_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
        let cfg = CheckConfig::workspace(&root).unwrap();
        assert!(!cfg.scan_files.is_empty());
        let v = run_check(&cfg).unwrap();
        assert!(
            v.is_empty(),
            "workspace lints failed:\n{}",
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn real_workspace_reaches_the_seeded_roots() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
        let cfg = CheckConfig::workspace(&root).unwrap();
        let reachable = reachable_report(&cfg).unwrap();
        // Every configured root family must actually seed the graph —
        // a renamed root would otherwise silently drop coverage.
        for root_fn in [
            "match_event_into",
            "query_into",
            "route_event",
            "publish_batch",
            "pin",
            "deref",
            "decode",
            "from_bytes",
            "next_frame",
            "decode_all",
        ] {
            assert!(
                reachable.iter().any(|line| line.contains(root_fn)),
                "no reachable fn matches `{root_fn}`:\n{}",
                reachable.join("\n")
            );
        }
        // And propagation is genuinely transitive: helpers that are not
        // roots themselves must appear with a multi-hop chain.
        assert!(
            reachable.iter().any(|line| line.contains(" -> ")),
            "{}",
            reachable.join("\n")
        );
    }
}
