//! A conservative intra-workspace call graph over lexed sources.
//!
//! The graph is built from tokens alone — no name resolution, no types
//! — so it *over-approximates*: a method call `.name(...)` links to
//! every workspace method of that name, a qualified call `Type::name`
//! links to every `name` in any `impl Type`, and a bare call links to
//! every free function (or same-file function) of that name. Calls into
//! the standard library or external crates resolve to nothing and drop
//! out. Over-approximation is the right direction for the passes built
//! on top: the no-panic and wire-robustness requirements propagate to
//! *at least* everything actually reachable from a hot-path root.
//!
//! Functions defined inside `#[cfg(test)]` items are excluded from the
//! graph entirely — test helpers neither seed nor receive requirements.

use crate::lex::{Lexed, TokenKind};

/// Keywords and pseudo-callees that must never be treated as call
/// sites (`Fn(u8)` trait bounds, `if (cond)`, ...).
const NOT_CALLEES: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "Fn", "FnMut", "FnOnce", "for", "if", "impl", "in", "let", "loop", "match",
    "mod", "move", "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super",
    "trait", "type", "union", "unsafe", "use", "where", "while",
];

/// One function definition found in a lexed file.
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// The `impl` block's type name, when the fn is an associated item.
    pub impl_type: Option<String>,
    /// Whether the signature mentions `self` (method-call candidate).
    pub has_self: bool,
    /// Index of the owning file in the caller's source list.
    pub file: usize,
    /// Token index of the fn's name.
    pub name_tok: usize,
    /// Token range `[lo, hi]` of the body braces, if the fn has one.
    pub body: Option<(usize, usize)>,
    /// Whether the definition sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq)]
pub enum CallKind {
    /// `name(...)` — a free function or a locally imported item.
    Bare,
    /// `.name(...)` — a method; receiver type unknown.
    Method,
    /// `Qual::name(...)` — the qualifying path segment is carried.
    Qualified(String),
    /// `<...>::name(...)` or another shape the lexer cannot attribute;
    /// resolved maximally (every fn of that name).
    Unknown,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    pub name: String,
    pub kind: CallKind,
    /// Token index of the callee name.
    pub tok: usize,
}

/// Collects every function definition in `lexed` (file index `file`),
/// tracking enclosing `impl` blocks for associated-fn attribution.
pub fn collect_fns(lexed: &Lexed, file: usize) -> Vec<FnDef> {
    let toks = &lexed.tokens;
    let len = toks.len();
    let mut fns = Vec::new();
    // Stack of (body-end token index, impl type name).
    let mut impls: Vec<(usize, String)> = Vec::new();
    let mut i = 0;
    while i < len {
        if lexed.in_attr(i) {
            i += 1;
            continue;
        }
        if lexed.is_ident(i, "impl") {
            if let Some((body_open, ty)) = impl_header(lexed, i) {
                let end = toks[body_open].mat;
                if end != usize::MAX {
                    impls.push((end, ty));
                }
                i = body_open + 1;
                continue;
            }
        }
        if lexed.is_ident(i, "fn") && i + 1 < len && matches!(toks[i + 1].kind, TokenKind::Ident) {
            let name_tok = i + 1;
            let name = String::from_utf8_lossy(lexed.text(name_tok)).into_owned();
            // Walk the signature: jump over delimited groups; the first
            // top-level `{` opens the body, a `;` means no body.
            let mut j = name_tok + 1;
            let mut body = None;
            let mut has_self = false;
            while j < len {
                match toks[j].kind {
                    TokenKind::Open(b'{') => {
                        if toks[j].mat != usize::MAX {
                            body = Some((j, toks[j].mat));
                        }
                        break;
                    }
                    TokenKind::Open(_) if toks[j].mat != usize::MAX => {
                        // Scan the group (parameters may carry `self`).
                        has_self = has_self || (j..toks[j].mat).any(|t| lexed.is_ident(t, "self"));
                        j = toks[j].mat + 1;
                        continue;
                    }
                    TokenKind::Punct(b';') => break,
                    _ => {}
                }
                has_self = has_self || lexed.is_ident(j, "self");
                j += 1;
            }
            let impl_type = impls
                .iter()
                .rev()
                .find(|&&(end, _)| name_tok < end)
                .map(|(_, ty)| ty.clone());
            fns.push(FnDef {
                name,
                impl_type,
                has_self,
                file,
                name_tok,
                body,
                in_test: lexed.in_test(name_tok),
            });
            // Continue *inside* the body so nested fns are also found.
            i = name_tok + 1;
            continue;
        }
        i += 1;
    }
    fns
}

/// Parses an `impl` header starting at token `i` ("impl"); returns the
/// body-open token index and the implemented type's last path segment.
fn impl_header(lexed: &Lexed, i: usize) -> Option<(usize, String)> {
    let toks = &lexed.tokens;
    let len = toks.len();
    // Find the body `{`, jumping over parenthesized groups; also note a
    // top-level `for` (trait impls name the type after it).
    let mut j = i + 1;
    let mut for_tok = None;
    let mut body_open = None;
    let mut angle = 0i32;
    while j < len {
        match toks[j].kind {
            TokenKind::Open(b'{') if angle <= 0 => {
                body_open = Some(j);
                break;
            }
            TokenKind::Open(_) if toks[j].mat != usize::MAX => {
                j = toks[j].mat + 1;
                continue;
            }
            TokenKind::Punct(b'<') => angle += 1,
            TokenKind::Punct(b'>') => {
                // `->` is not an angle close.
                if !(j > 0 && lexed.is_punct(j - 1, b'-') && toks[j - 1].end == toks[j].start) {
                    angle -= 1;
                }
            }
            TokenKind::Punct(b';') => return None, // `impl Trait for T;`-like degenerate
            _ => {
                if angle <= 0 && lexed.is_ident(j, "for") && for_tok.is_none() {
                    for_tok = Some(j);
                }
            }
        }
        j += 1;
    }
    let body_open = body_open?;
    // The type lives after `for` (trait impl) or after `impl<...>`.
    let mut k = match for_tok {
        Some(f) => f + 1,
        None => {
            let mut k = i + 1;
            if k < len && lexed.is_punct(k, b'<') {
                // Skip the generic parameter list.
                let mut depth = 0i32;
                while k < len {
                    if lexed.is_punct(k, b'<') {
                        depth += 1;
                    } else if lexed.is_punct(k, b'>')
                        && !(lexed.is_punct(k - 1, b'-') && toks[k - 1].end == toks[k].start)
                    {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            }
            k
        }
    };
    // Skip reference/pointer sigils and modifiers, then take the last
    // segment of the type path.
    let mut last = None;
    while k < body_open {
        match &toks[k].kind {
            TokenKind::Punct(b'&') | TokenKind::Punct(b'*') | TokenKind::Lifetime => k += 1,
            TokenKind::Ident => {
                if lexed.is_ident(k, "mut") || lexed.is_ident(k, "dyn") {
                    k += 1;
                    continue;
                }
                last = Some(String::from_utf8_lossy(lexed.text(k)).into_owned());
                if k + 2 < body_open && lexed.is_path_sep(k + 1) {
                    k += 3; // follow `::` to the next segment
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    Some((body_open, last.unwrap_or_else(|| "?".to_string())))
}

/// Collects call sites inside the token range `[lo, hi]` (a fn body).
pub fn collect_calls(lexed: &Lexed, lo: usize, hi: usize) -> Vec<CallSite> {
    let toks = &lexed.tokens;
    let mut calls = Vec::new();
    for i in lo..=hi.min(toks.len().saturating_sub(1)) {
        if !matches!(toks[i].kind, TokenKind::Ident) || lexed.in_attr(i) {
            continue;
        }
        let name = String::from_utf8_lossy(lexed.text(i)).into_owned();
        if NOT_CALLEES.contains(&name.as_str()) {
            continue;
        }
        // A definition, not a call.
        if i > 0 && lexed.is_ident(i - 1, "fn") {
            continue;
        }
        // The next token must open the argument list; `name!(...)` macro
        // invocations fail this check (the `!` sits between).
        let next = i + 1;
        if next > hi || !matches!(toks[next].kind, TokenKind::Open(b'(')) {
            continue;
        }
        let kind = if i > 0 && lexed.is_punct(i - 1, b'.') {
            CallKind::Method
        } else if i >= 2 && lexed.is_path_sep(i - 2) {
            match (i >= 3).then(|| &toks[i - 3].kind) {
                Some(TokenKind::Ident) => {
                    let qual = String::from_utf8_lossy(lexed.text(i - 3)).into_owned();
                    CallKind::Qualified(qual)
                }
                // `<T as Trait>::f(...)`, `Vec::<u8>::f(...)` — cannot
                // attribute the qualifier; resolve maximally.
                _ => CallKind::Unknown,
            }
        } else {
            CallKind::Bare
        };
        calls.push(CallSite { name, kind, tok: i });
    }
    calls
}

/// A whole-workspace call graph: every non-test fn definition plus the
/// resolved edges between them.
#[derive(Debug)]
pub struct CallGraph {
    pub fns: Vec<FnDef>,
    /// Outgoing edges per fn (indices into `fns`).
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over `sources` (parallel to the file indices
    /// recorded in the defs).
    pub fn build(sources: &[&Lexed]) -> CallGraph {
        let mut fns = Vec::new();
        for (file, lexed) in sources.iter().enumerate() {
            fns.extend(collect_fns(lexed, file).into_iter().filter(|f| !f.in_test));
        }
        let mut by_name: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
        for (idx, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(idx);
        }
        let mut edges = vec![Vec::new(); fns.len()];
        for (idx, f) in fns.iter().enumerate() {
            let Some((lo, hi)) = f.body else { continue };
            let lexed = sources[f.file];
            for call in collect_calls(lexed, lo, hi) {
                if lexed.in_test(call.tok) {
                    continue;
                }
                let Some(candidates) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                for &cand in candidates {
                    if cand == idx {
                        continue;
                    }
                    let target = &fns[cand];
                    let linked = match &call.kind {
                        CallKind::Method => target.has_self,
                        CallKind::Bare => target.impl_type.is_none() || target.file == f.file,
                        CallKind::Qualified(q) => {
                            let q = if q == "Self" {
                                f.impl_type.as_deref().unwrap_or("Self")
                            } else {
                                q.as_str()
                            };
                            target.impl_type.as_deref() == Some(q)
                        }
                        CallKind::Unknown => true,
                    };
                    if linked && !edges[idx].contains(&cand) {
                        edges[idx].push(cand);
                    }
                }
            }
        }
        CallGraph { fns, edges }
    }

    /// Fn indices matching a root spec: a bare name (`publish_batch`),
    /// a name prefix (`route_event*`), or a qualified associated fn
    /// (`SnapshotGuard::deref`).
    pub fn roots(&self, spec: &str) -> Vec<usize> {
        let (ty, name) = match spec.split_once("::") {
            Some((t, n)) => (Some(t), n),
            None => (None, spec),
        };
        let (prefix, is_prefix) = match name.strip_suffix('*') {
            Some(p) => (p, true),
            None => (name, false),
        };
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                let name_ok = if is_prefix {
                    f.name.starts_with(prefix)
                } else {
                    f.name == prefix
                };
                name_ok && (ty.is_none() || f.impl_type.as_deref() == ty)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS from `seeds`; returns, for each reached fn, the index of the
    /// fn it was reached from (`usize::MAX` for seeds themselves).
    pub fn reach(&self, seeds: &[usize]) -> std::collections::BTreeMap<usize, usize> {
        let mut parent = std::collections::BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &s in seeds {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(s) {
                e.insert(usize::MAX);
                queue.push_back(s);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &next in &self.edges[f] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                    e.insert(f);
                    queue.push_back(next);
                }
            }
        }
        parent
    }

    /// The call chain from a root down to `idx`, e.g.
    /// `match_event_into -> query_into -> helper` (capped at 6 hops).
    pub fn chain(&self, parents: &std::collections::BTreeMap<usize, usize>, idx: usize) -> String {
        let mut names = vec![self.fns[idx].name.clone()];
        let mut cur = idx;
        while let Some(&p) = parents.get(&cur) {
            if p == usize::MAX || names.len() >= 6 {
                break;
            }
            names.push(self.fns[p].name.clone());
            cur = p;
        }
        names.reverse();
        names.join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    #[test]
    fn finds_free_and_assoc_fns() {
        let lexed = lex(br#"
fn free(x: u32) -> u32 { x }
struct S;
impl S {
    pub fn method(&self) -> u32 { free(1) }
    fn assoc() -> S { S }
}
impl std::ops::Deref for S {
    type Target = u32;
    fn deref(&self) -> &u32 { &0 }
}
"#);
        let fns = collect_fns(&lexed, 0);
        let names: Vec<(&str, Option<&str>, bool)> = fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref(), f.has_self))
            .collect();
        assert_eq!(
            names,
            [
                ("free", None, false),
                ("method", Some("S"), true),
                ("assoc", Some("S"), false),
                ("deref", Some("S"), true),
            ]
        );
    }

    #[test]
    fn call_kinds_are_attributed() {
        let lexed = lex(b"fn f() { g(); x.h(); T::k(); Self::m(); if (a) {} }");
        let fns = collect_fns(&lexed, 0);
        let (lo, hi) = fns[0].body.expect("body");
        let calls = collect_calls(&lexed, lo, hi);
        let kinds: Vec<(&str, &CallKind)> =
            calls.iter().map(|c| (c.name.as_str(), &c.kind)).collect();
        assert_eq!(
            kinds,
            [
                ("g", &CallKind::Bare),
                ("h", &CallKind::Method),
                ("k", &CallKind::Qualified("T".into())),
                ("m", &CallKind::Qualified("Self".into())),
            ]
        );
    }

    #[test]
    fn macros_and_bounds_are_not_calls() {
        let lexed = lex(b"fn f<F: Fn(u8)>(g: F) { vec![1]; format!(\"x\"); g(1); }");
        let fns = collect_fns(&lexed, 0);
        let (lo, hi) = fns[0].body.expect("body");
        let calls = collect_calls(&lexed, lo, hi);
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["g"]);
    }

    #[test]
    fn reachability_is_transitive() {
        let lexed = lex(br#"
pub fn root() { helper(); }
fn helper() { leaf(); }
fn leaf() {}
fn unrelated() {}
"#);
        let graph = CallGraph::build(&[&lexed]);
        let seeds = graph.roots("root");
        let reached = graph.reach(&seeds);
        let names: Vec<&str> = reached
            .keys()
            .map(|&i| graph.fns[i].name.as_str())
            .collect();
        assert_eq!(names, ["root", "helper", "leaf"]);
        let leaf = graph.roots("leaf")[0];
        assert_eq!(graph.chain(&reached, leaf), "root -> helper -> leaf");
    }

    #[test]
    fn test_fns_are_outside_the_graph() {
        let lexed = lex(br#"
pub fn root() {}
#[cfg(test)]
mod tests {
    fn root() { x.unwrap(); }
}
"#);
        let graph = CallGraph::build(&[&lexed]);
        assert_eq!(graph.fns.len(), 1);
    }

    #[test]
    fn method_calls_over_approximate() {
        let lexed = lex(br#"
pub fn root(s: &S) { s.work(); }
struct S;
struct T;
impl S { fn work(&self) {} }
impl T { fn work(&self) {} }
fn work() {}
"#);
        let graph = CallGraph::build(&[&lexed]);
        let reached = graph.reach(&graph.roots("root"));
        // Both methods link (receiver type unknown); the free fn does
        // not (a `.work()` call cannot be a free fn).
        let names: Vec<(&str, Option<&str>)> = reached
            .keys()
            .map(|&i| {
                (
                    graph.fns[i].name.as_str(),
                    graph.fns[i].impl_type.as_deref(),
                )
            })
            .collect();
        assert_eq!(
            names,
            [("root", None), ("work", Some("S")), ("work", Some("T"))]
        );
    }
}
