//! Property-based tests for the workload generators: structural
//! guarantees the experiments rely on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_workload::popularity::{
    event_for, interest_schema, interest_subscription, random_matched_set,
};
use subsum_workload::{PaperParams, Workload, Zipf};

proptest! {
    /// Generated subscriptions always carry the Table 2 attribute mix
    /// and are satisfiable.
    #[test]
    fn subscriptions_have_paper_shape(seed in 0u64..500, p in 0.0f64..=1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Workload::new(PaperParams::default(), p);
        for _ in 0..10 {
            let sub = w.subscription(&mut rng);
            prop_assert_eq!(sub.attr_mask().count(), 5);
            prop_assert!(sub.is_satisfiable());
        }
    }

    /// Events carry the expected attribute count and valid kinds.
    #[test]
    fn events_have_paper_shape(seed in 0u64..500, hit in 0.0f64..=1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Workload::new(PaperParams::default(), 0.5);
        let schema = w.schema().clone();
        for _ in 0..10 {
            let e = w.event(hit, &mut rng);
            prop_assert_eq!(e.len(), 5);
            for (attr, value) in e.iter() {
                prop_assert!(schema.kind(attr).accepts(value), "kind mismatch at {attr}");
            }
        }
    }

    /// The popularity workload produces events matching exactly the
    /// drawn broker set, for any population and popularity.
    #[test]
    fn popularity_events_are_exact(seed in 0u64..500, brokers in 2usize..40,
                                   popularity in 0.0f64..=1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = interest_schema();
        let matched = random_matched_set(brokers, popularity, &mut rng);
        prop_assert!(!matched.is_empty());
        prop_assert!(matched.len() <= brokers);
        let event = event_for(&schema, &matched);
        for b in 0..brokers as u16 {
            let sub = interest_subscription(&schema, b);
            prop_assert_eq!(sub.matches(&event), matched.contains(&b), "broker {}", b);
        }
    }

    /// Zipf sampling stays in range and rank-0 is (weakly) most likely.
    #[test]
    fn zipf_within_range(seed in 0u64..200, n in 1usize..50, alpha in 0.0f64..2.5) {
        let z = Zipf::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..200 {
            let r = z.sample(&mut rng);
            prop_assert!(r < n);
            counts[r] += 1;
        }
        if n > 1 && alpha >= 1.0 {
            let max = *counts.iter().max().unwrap();
            // Rank 0 should be near the top (within sampling noise).
            prop_assert!(counts[0] * 3 >= max, "counts {counts:?}");
        }
    }

    /// Distinct workloads never emit colliding "unique" values: two
    /// non-subsumed subscriptions from one workload never cover each
    /// other.
    #[test]
    fn fresh_values_are_distinct(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Workload::new(PaperParams::default(), 0.0);
        let subs = w.subscriptions(12, &mut rng);
        for (i, a) in subs.iter().enumerate() {
            for (j, b) in subs.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.covers(b), "{a} covers {b}");
                }
            }
        }
    }
}
