//! A Zipf-distributed sampler over ranks `0..n`.
//!
//! Used to skew value popularity in workloads (popular stock symbols,
//! hot attribute values). Implemented with a precomputed cumulative
//! distribution and binary search, so sampling is `O(log n)`.

use rand::Rng;

/// A Zipf(α) distribution over `n` ranks; rank 0 is the most popular.
///
/// # Example
///
/// ```
/// use subsum_workload::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n ≥ 1` ranks with exponent `alpha ≥ 0`
    /// (`alpha = 0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "zipf needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if there are no ranks (unreachable through `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..len()`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_prefers_low_ranks() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 0 should dominate strongly at α = 1.2.
        assert!(counts[0] as f64 / 50_000.0 > 0.15);
    }

    #[test]
    fn single_rank() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_always_in_range() {
        let zipf = Zipf::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 7);
        }
    }
}
