//! A realistic stock-quote workload over the paper's example schema
//! (Fig. 2), used by the runnable examples.

use rand::Rng;

use subsum_types::{stock_schema, Event, NumOp, Schema, StrOp, Subscription};

use crate::zipf::Zipf;

/// Ticker symbols of the simulated market (popularity follows a Zipf
/// distribution, most-traded first).
pub const SYMBOLS: [&str; 12] = [
    "OTE", "IBM", "MSFT", "AAPL", "NOK", "SUN", "HPQ", "ORCL", "CSCO", "INTC", "DELL", "SAP",
];

/// Exchanges quoted by the feed.
pub const EXCHANGES: [&str; 3] = ["NYSE", "NASDAQ", "ASE"];

/// A simulated market data feed.
#[derive(Debug)]
pub struct StockFeed {
    schema: Schema,
    symbol_popularity: Zipf,
    /// Last traded price per symbol.
    prices: Vec<f64>,
    clock: i64,
}

impl StockFeed {
    /// Creates a feed over the paper's stock schema.
    pub fn new() -> Self {
        StockFeed {
            schema: stock_schema(),
            symbol_popularity: Zipf::new(SYMBOLS.len(), 0.9),
            prices: (0..SYMBOLS.len()).map(|k| 8.0 + k as f64 * 3.5).collect(),
            clock: 1_057_055_125, // the paper's example timestamp
        }
    }

    /// The stock schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Produces the next quote event: a Zipf-popular symbol with a small
    /// random walk on its price.
    pub fn quote<R: Rng>(&mut self, rng: &mut R) -> Event {
        let k = self.symbol_popularity.sample(rng);
        let step = (rng.gen::<f64>() - 0.5) * 0.5;
        self.prices[k] = (self.prices[k] + step).max(0.25);
        let price = (self.prices[k] * 100.0).round() / 100.0;
        self.clock += rng.gen_range(1..30);
        let volume = rng.gen_range(1_000..500_000);
        Event::builder(&self.schema)
            .str("exchange", EXCHANGES[k % EXCHANGES.len()])
            .and_then(|b| b.str("symbol", SYMBOLS[k]))
            .and_then(|b| b.date("when", self.clock))
            .and_then(|b| b.num("price", price))
            .and_then(|b| b.int("volume", volume))
            .and_then(|b| b.num("high", price + 0.40))
            .and_then(|b| b.num("low", (price - 0.35).max(0.01)))
            .expect("stock schema accepts quote fields")
            .build()
    }

    /// A random trader subscription: symbol interest plus a price band
    /// and sometimes a volume floor — the kind of filter the paper's
    /// Fig. 3 shows.
    pub fn trader_subscription<R: Rng>(&self, rng: &mut R) -> Subscription {
        let k = self.symbol_popularity.sample(rng);
        let anchor = self.prices[k];
        let lo = (anchor * (0.85 + rng.gen::<f64>() * 0.1) * 100.0).round() / 100.0;
        let hi = (anchor * (1.05 + rng.gen::<f64>() * 0.1) * 100.0).round() / 100.0;
        let mut b = Subscription::builder(&self.schema)
            .str_op("symbol", StrOp::Eq, SYMBOLS[k])
            .and_then(|b| b.num("price", NumOp::Gt, lo))
            .and_then(|b| b.num("price", NumOp::Lt, hi))
            .expect("stock schema accepts trader constraints");
        if rng.gen::<f64>() < 0.3 {
            b = b
                .num("volume", NumOp::Gt, rng.gen_range(50_000..200_000) as f64)
                .expect("volume constraint");
        }
        if rng.gen::<f64>() < 0.2 {
            b = b
                .str_op("exchange", StrOp::Prefix, "N")
                .expect("exchange constraint");
        }
        b.build().expect("non-empty subscription")
    }
}

impl Default for StockFeed {
    fn default() -> Self {
        StockFeed::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quotes_are_well_formed() {
        let mut feed = StockFeed::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let q = feed.quote(&mut rng);
            assert_eq!(q.len(), 7);
        }
    }

    #[test]
    fn popular_symbols_dominate() {
        let mut feed = StockFeed::new();
        let mut rng = StdRng::seed_from_u64(2);
        let schema = feed.schema().clone();
        let symbol = schema.attr_id("symbol").unwrap();
        let mut ote = 0;
        for _ in 0..2000 {
            let q = feed.quote(&mut rng);
            if q.get(symbol).and_then(|v| v.as_str()) == Some("OTE") {
                ote += 1;
            }
        }
        assert!(ote > 2000 / SYMBOLS.len(), "OTE quotes: {ote}");
    }

    #[test]
    fn trader_subscriptions_eventually_match_quotes() {
        let mut feed = StockFeed::new();
        let mut rng = StdRng::seed_from_u64(3);
        let subs: Vec<Subscription> = (0..50)
            .map(|_| feed.trader_subscription(&mut rng))
            .collect();
        let mut hits = 0;
        for _ in 0..500 {
            let q = feed.quote(&mut rng);
            hits += subs.iter().filter(|s| s.matches(&q)).count();
        }
        assert!(hits > 0, "a realistic feed must trigger some traders");
    }

    #[test]
    fn subscriptions_are_satisfiable() {
        let feed = StockFeed::new();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(feed.trader_subscription(&mut rng).is_satisfiable());
        }
    }
}
