//! Subscription and event generators reproducing the paper's workload
//! model (§5.1–5.2).
//!
//! The model's key knob is the **subsumption probability** `p`: a
//! generated constraint is *subsumed* with probability `p`, meaning it
//! collapses into existing summary rows —
//!
//! * arithmetic: "all subsumed values fall into the `n_sr` ranges of the
//!   attribute"; a subsumed constraint *is* one of the attribute's `n_sr`
//!   canonical sub-ranges (expressed as a `≥ lo ∧ ≤ hi` pair), while a
//!   non-subsumed constraint is an equality on a fresh distinct value
//!   outside the ranges (a new AACS_E row);
//! * string: a subsumed constraint is one of the attribute's canonical
//!   prefix patterns (an existing SACS row), while a non-subsumed
//!   constraint is a fresh literal of `s_sv` bytes (a new row).

use rand::Rng;

use subsum_types::{AttrId, AttrKind, Event, NumOp, Schema, StrOp, Subscription, Value};

use crate::params::PaperParams;

/// Builds the `n_t`-attribute experiment schema: 40% arithmetic
/// (`num0`, `num1`, …, alternating float/integer) and 60% string
/// (`str0`, `str1`, …), matching §5.1's attribute mix.
pub fn experiment_schema(params: &PaperParams) -> Schema {
    let n_arith = (params.nt as f64 * params.arith_fraction).round() as usize;
    let mut b = Schema::builder();
    for k in 0..n_arith {
        let kind = if k % 2 == 0 {
            AttrKind::Float
        } else {
            AttrKind::Integer
        };
        b = b
            .attr(format!("num{k}"), kind)
            .expect("generated names are unique");
    }
    for k in 0..params.nt - n_arith {
        b = b
            .attr(format!("str{k}"), AttrKind::String)
            .expect("generated names are unique");
    }
    b.build()
}

/// The `j`-th canonical sub-range of arithmetic attribute `attr`
/// (`j < n_sr`): disjoint blocks `[1000·(j+1), 1000·(j+1) + 100]`,
/// distinct per attribute.
fn canonical_range(attr: AttrId, j: usize) -> (f64, f64) {
    let base = 1000.0 * (j as f64 + 1.0) + 10_000.0 * attr.index() as f64;
    (base, base + 100.0)
}

/// The `k`-th canonical prefix pool entry for string attribute `attr`.
fn canonical_prefix(attr: AttrId, k: usize) -> String {
    format!("p{}x{k}v", attr.index())
}

/// Generates subscriptions and matching events under the paper's model.
#[derive(Debug)]
pub struct Workload {
    schema: Schema,
    params: PaperParams,
    /// Subsumption probability `p` for this workload.
    subsumption: f64,
    /// Size of the canonical prefix pool per string attribute.
    prefix_pool: usize,
    /// Counter guaranteeing distinct non-subsumed values.
    next_unique: u64,
}

impl Workload {
    /// Creates a workload over the experiment schema.
    pub fn new(params: PaperParams, subsumption: f64) -> Self {
        let schema = experiment_schema(&params);
        Workload {
            schema,
            params,
            subsumption,
            prefix_pool: params.nsr.max(2),
            next_unique: 0,
        }
    }

    /// The schema subscriptions and events are generated over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The parameter set in force.
    pub fn params(&self) -> &PaperParams {
        &self.params
    }

    fn fresh_unique(&mut self) -> u64 {
        let v = self.next_unique;
        self.next_unique += 1;
        v
    }

    /// Generates one subscription: `n_t/2` attributes (40% arithmetic),
    /// each constraint subsumed with probability `p`.
    pub fn subscription<R: Rng>(&mut self, rng: &mut R) -> Subscription {
        let arith_attrs: Vec<AttrId> = self.schema.arithmetic_attrs().collect();
        let string_attrs: Vec<AttrId> = self.schema.string_attrs().collect();
        let n_arith = self.params.arith_per_sub().min(arith_attrs.len());
        let n_string = self.params.strings_per_sub().min(string_attrs.len());

        let schema = self.schema.clone();
        let mut b = Subscription::builder(&schema);
        for &attr in pick_distinct(&arith_attrs, n_arith, rng).iter() {
            let name = schema.spec(attr).name.clone();
            if rng.gen::<f64>() < self.subsumption {
                // Subsumed: exactly one of the n_sr canonical sub-ranges.
                let j = rng.gen_range(0..self.params.nsr);
                let (lo, hi) = canonical_range(attr, j);
                b = b
                    .num(&name, NumOp::Ge, lo)
                    .and_then(|b| b.num(&name, NumOp::Le, hi))
                    .expect("schema-checked constraint");
            } else {
                // Non-subsumed: a fresh equality value outside all ranges.
                let v = 500_000.0 + self.fresh_unique() as f64;
                b = b
                    .num(&name, NumOp::Eq, v)
                    .expect("schema-checked constraint");
            }
        }
        for &attr in pick_distinct(&string_attrs, n_string, rng).iter() {
            let name = schema.spec(attr).name.clone();
            if rng.gen::<f64>() < self.subsumption {
                let k = rng.gen_range(0..self.prefix_pool);
                b = b
                    .str_op(&name, StrOp::Prefix, &canonical_prefix(attr, k))
                    .expect("schema-checked constraint");
            } else {
                // Fresh literal of s_sv bytes.
                let lit = format!(
                    "u{:0>width$}",
                    self.fresh_unique(),
                    width = self.params.ssv - 1
                );
                b = b
                    .str_op(&name, StrOp::Eq, &lit)
                    .expect("schema-checked constraint");
            }
        }
        b.build().expect("generated subscriptions are non-empty")
    }

    /// Generates `count` subscriptions.
    pub fn subscriptions<R: Rng>(&mut self, count: usize, rng: &mut R) -> Vec<Subscription> {
        (0..count).map(|_| self.subscription(rng)).collect()
    }

    /// Generates one event: `n_t/2` attributes; arithmetic values land in
    /// a canonical range with probability `hit_rate` (else a fresh
    /// value), string values extend a canonical prefix with probability
    /// `hit_rate`.
    pub fn event<R: Rng>(&mut self, hit_rate: f64, rng: &mut R) -> Event {
        let arith_attrs: Vec<AttrId> = self.schema.arithmetic_attrs().collect();
        let string_attrs: Vec<AttrId> = self.schema.string_attrs().collect();
        let n_arith = self.params.arith_per_sub().min(arith_attrs.len());
        let n_string = self.params.strings_per_sub().min(string_attrs.len());

        let schema = self.schema.clone();
        let mut b = Event::builder(&schema);
        for &attr in pick_distinct(&arith_attrs, n_arith, rng).iter() {
            let v = if rng.gen::<f64>() < hit_rate {
                let j = rng.gen_range(0..self.params.nsr);
                let (lo, hi) = canonical_range(attr, j);
                lo + ((hi - lo) * rng.gen::<f64>()).floor()
            } else {
                900_000.0 + self.fresh_unique() as f64
            };
            let value = match schema.kind(attr) {
                AttrKind::Float => Value::float(v).expect("finite"),
                AttrKind::Integer => Value::Int(v as i64),
                AttrKind::Date => Value::Date(v as i64),
                AttrKind::String => unreachable!("arith attrs only"),
            };
            b = b.set_id(attr, value).expect("kind-checked");
        }
        for &attr in pick_distinct(&string_attrs, n_string, rng).iter() {
            let s = if rng.gen::<f64>() < hit_rate {
                let k = rng.gen_range(0..self.prefix_pool);
                format!("{}{}", canonical_prefix(attr, k), rng.gen_range(0..100))
            } else {
                format!("w{}", self.fresh_unique())
            };
            b = b.set_id(attr, Value::Str(s)).expect("kind-checked");
        }
        b.build()
    }
}

fn pick_distinct<R: Rng, T: Copy>(pool: &[T], count: usize, rng: &mut R) -> Vec<T> {
    use rand::seq::SliceRandom;
    let mut v: Vec<T> = pool.to_vec();
    v.shuffle(rng);
    v.truncate(count);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use subsum_core::{BrokerSummary, SummaryStats};
    use subsum_types::{BrokerId, LocalSubId};

    #[test]
    fn schema_shape() {
        let schema = experiment_schema(&PaperParams::default());
        assert_eq!(schema.len(), 10);
        assert_eq!(schema.arithmetic_attrs().count(), 4);
        assert_eq!(schema.string_attrs().count(), 6);
    }

    #[test]
    fn subscription_has_expected_attribute_mix() {
        let mut w = Workload::new(PaperParams::default(), 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let sub = w.subscription(&mut rng);
        // 2 arithmetic + 3 string distinct attributes.
        assert_eq!(sub.attr_mask().count(), 5);
    }

    #[test]
    fn subscription_size_near_table2_average() {
        // Table 2: the average subscription is about 50 bytes.
        let mut w = Workload::new(PaperParams::default(), 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let schema = w.schema().clone();
        let total: usize = (0..200)
            .map(|_| w.subscription(&mut rng).wire_size(&schema, 4))
            .sum();
        let avg = total as f64 / 200.0;
        assert!((35.0..70.0).contains(&avg), "average size {avg}");
    }

    #[test]
    fn full_subsumption_keeps_summary_rows_minimal() {
        // p = 1: every constraint is canonical → AACS has at most n_sr
        // rows per attribute and SACS at most the pool size.
        let params = PaperParams::default();
        let mut w = Workload::new(params, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let schema = w.schema().clone();
        let mut summary = BrokerSummary::new(schema.clone());
        for i in 0..200u32 {
            let sub = w.subscription(&mut rng);
            summary.insert(BrokerId(0), LocalSubId(i), &sub);
        }
        let stats = SummaryStats::of(&summary);
        let n_arith = schema.arithmetic_attrs().count();
        let n_string = schema.string_attrs().count();
        assert!(stats.range_rows <= n_arith * params.nsr);
        assert_eq!(stats.point_rows, 0);
        assert!(stats.pattern_rows <= n_string * 2);
    }

    #[test]
    fn zero_subsumption_grows_rows_linearly() {
        let mut w = Workload::new(PaperParams::default(), 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let schema = w.schema().clone();
        let mut summary = BrokerSummary::new(schema.clone());
        for i in 0..100u32 {
            let sub = w.subscription(&mut rng);
            summary.insert(BrokerId(0), LocalSubId(i), &sub);
        }
        let stats = SummaryStats::of(&summary);
        // Every arithmetic constraint is a distinct equality row; every
        // string constraint a distinct literal row.
        assert_eq!(stats.point_rows, 100 * 2);
        assert_eq!(stats.pattern_rows, 100 * 3);
        assert_eq!(stats.range_rows, 0);
    }

    #[test]
    fn high_subsumption_shrinks_summaries() {
        let mut rng = StdRng::seed_from_u64(5);
        let schema = experiment_schema(&PaperParams::default());
        let sizes: Vec<usize> = [0.1, 0.9]
            .iter()
            .map(|&p| {
                let mut w = Workload::new(PaperParams::default(), p);
                let mut summary = BrokerSummary::new(schema.clone());
                for i in 0..300u32 {
                    let sub = w.subscription(&mut rng);
                    summary.insert(BrokerId(0), LocalSubId(i), &sub);
                }
                SummaryStats::of(&summary).total_size(subsum_core::SizeParams::default())
            })
            .collect();
        assert!(
            sizes[1] < sizes[0],
            "p=0.9 summary ({}) should be smaller than p=0.1 ({})",
            sizes[1],
            sizes[0]
        );
    }

    #[test]
    fn events_hit_subscriptions_at_high_hit_rate() {
        let mut w = Workload::new(PaperParams::default(), 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        let subs: Vec<Subscription> = w.subscriptions(50, &mut rng);
        let mut matches = 0;
        for _ in 0..200 {
            let e = w.event(1.0, &mut rng);
            if subs.iter().any(|s| s.matches(&e)) {
                matches += 1;
            }
        }
        assert!(
            matches > 0,
            "canonical events should hit canonical subscriptions"
        );
    }

    #[test]
    fn zero_hit_rate_events_never_match_fresh_values() {
        let mut w = Workload::new(PaperParams::default(), 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let subs = w.subscriptions(50, &mut rng);
        for _ in 0..100 {
            let e = w.event(0.0, &mut rng);
            assert!(!subs.iter().any(|s| s.matches(&e)));
        }
    }

    #[test]
    fn generated_values_are_f32_exact() {
        // The wire codec at s_st = 4 must round-trip workload values.
        let mut w = Workload::new(PaperParams::default(), 0.5);
        let mut rng = StdRng::seed_from_u64(8);
        let schema = w.schema().clone();
        let layout = subsum_types::IdLayout::new(24, 1000, schema.len() as u32).unwrap();
        let codec = subsum_core::SummaryCodec::new(layout, subsum_core::ArithWidth::Four);
        let mut summary = BrokerSummary::new(schema.clone());
        for i in 0..100u32 {
            let sub = w.subscription(&mut rng);
            summary.insert(BrokerId(0), LocalSubId(i), &sub);
        }
        let bytes = codec.encode(&summary).unwrap();
        let decoded = codec.decode(&bytes, &schema).unwrap();
        assert_eq!(decoded, summary);
    }
}
