//! The paper's experimental parameter space (Tables 1 and 2, §5.1).

use serde::{Deserialize, Serialize};

/// Parameter values from Table 2 of the paper, with the derived workload
/// shape of §5.1 ("the 'average' subscription or event includes `n_t/2`
/// attributes, with 40% (60%) being arithmetic (strings); the average
/// size of a subscription/event is 50 bytes").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperParams {
    /// Number of brokers (the C&W overlay has 24).
    pub brokers: usize,
    /// `S`: average outstanding subscriptions per broker.
    pub outstanding: usize,
    /// `n_t`: total number of attribute names in the schema.
    pub nt: usize,
    /// `n_sr`: sub-range rows per arithmetic attribute.
    pub nsr: usize,
    /// `s_st` = `s_id`: arithmetic value and subscription id width.
    pub sst: usize,
    /// `s_sv`: average string value size in bytes.
    pub ssv: usize,
    /// Average raw subscription/event size in bytes.
    pub sub_size: usize,
    /// Fraction of subscription attributes that are arithmetic (0.4).
    pub arith_fraction: f64,
}

impl Default for PaperParams {
    fn default() -> Self {
        PaperParams {
            brokers: 24,
            outstanding: 1000,
            nt: 10,
            nsr: 2,
            sst: 4,
            ssv: 10,
            sub_size: 50,
            arith_fraction: 0.4,
        }
    }
}

impl PaperParams {
    /// Attributes per average subscription/event (`n_t / 2`).
    pub fn attrs_per_sub(&self) -> usize {
        self.nt / 2
    }

    /// Arithmetic attributes per average subscription (40% of `n_t/2`).
    pub fn arith_per_sub(&self) -> usize {
        (self.attrs_per_sub() as f64 * self.arith_fraction).round() as usize
    }

    /// String attributes per average subscription (the remainder).
    pub fn strings_per_sub(&self) -> usize {
        self.attrs_per_sub() - self.arith_per_sub()
    }

    /// The σ sweep of Fig. 8 and Fig. 11 (10 … 1000).
    pub fn sigma_sweep() -> [usize; 6] {
        [10, 50, 100, 250, 500, 1000]
    }

    /// The subsumption-probability sweep of Fig. 9/10 (10% … 90%).
    pub fn subsumption_sweep() -> [f64; 5] {
        [0.10, 0.25, 0.50, 0.75, 0.90]
    }

    /// The event popularity sweep of Fig. 10 (fraction of brokers each
    /// event matches).
    pub fn popularity_sweep() -> [f64; 5] {
        [0.10, 0.25, 0.50, 0.75, 0.90]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = PaperParams::default();
        assert_eq!(p.brokers, 24);
        assert_eq!(p.outstanding, 1000);
        assert_eq!(p.nt, 10);
        assert_eq!(p.nsr, 2);
        assert_eq!(p.sst, 4);
        assert_eq!(p.ssv, 10);
        assert_eq!(p.sub_size, 50);
    }

    #[test]
    fn derived_attribute_mix() {
        let p = PaperParams::default();
        assert_eq!(p.attrs_per_sub(), 5);
        assert_eq!(p.arith_per_sub(), 2);
        assert_eq!(p.strings_per_sub(), 3);
    }

    #[test]
    fn sweeps_cover_paper_axes() {
        assert_eq!(PaperParams::sigma_sweep()[0], 10);
        assert_eq!(*PaperParams::sigma_sweep().last().unwrap(), 1000);
        assert_eq!(PaperParams::subsumption_sweep().len(), 5);
        assert_eq!(PaperParams::popularity_sweep().len(), 5);
    }
}
