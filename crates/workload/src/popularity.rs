//! Popularity-controlled interest workloads for the event-routing
//! experiment (Fig. 10).
//!
//! The paper measures event-routing hops "for varying event popularities,
//! which captures the number of brokers that match the event; the
//! 'matched' brokers are randomly chosen for every event" (§5.2.2). To
//! realize an event that matches an *exact, arbitrary* set of brokers
//! with real content-based matching, each broker `b` registers an
//! interest subscription `tag ∋ "<b{b}>"` (string containment), and an
//! event targeting brokers `{3, 7}` carries `tag = "<b3><b7>"`. The
//! angle-bracket delimiters make markers prefix-free, so `<b1>` never
//! fires on `<b12>`.

use rand::seq::SliceRandom;
use rand::Rng;

use subsum_net::NodeId;
use subsum_types::{AttrKind, Event, Schema, StrOp, Subscription};

/// The single-attribute schema of the popularity workload.
pub fn interest_schema() -> Schema {
    Schema::builder()
        .attr("tag", AttrKind::String)
        .expect("valid schema")
        .build()
}

/// The marker string identifying broker `b` inside event tags.
pub fn marker(broker: NodeId) -> String {
    format!("<b{broker}>")
}

/// Broker `b`'s interest subscription: `tag` contains `<b{b}>`.
pub fn interest_subscription(schema: &Schema, broker: NodeId) -> Subscription {
    Subscription::builder(schema)
        .str_op("tag", StrOp::Contains, &marker(broker))
        .expect("tag attribute exists")
        .build()
        .expect("non-empty subscription")
}

/// An event matching exactly the brokers in `matched` (sorted markers,
/// so equal sets produce equal events).
pub fn event_for(schema: &Schema, matched: &[NodeId]) -> Event {
    let mut sorted: Vec<NodeId> = matched.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let tag: String = sorted.iter().map(|&b| marker(b)).collect();
    Event::builder(schema)
        .str("tag", tag)
        .expect("tag attribute exists")
        .build()
}

/// Draws a random set of `⌈popularity · brokers⌉` matched brokers.
pub fn random_matched_set<R: Rng>(brokers: usize, popularity: f64, rng: &mut R) -> Vec<NodeId> {
    let count = ((brokers as f64 * popularity).round() as usize).clamp(1, brokers);
    let mut all: Vec<NodeId> = (0..brokers as NodeId).collect();
    all.shuffle(rng);
    all.truncate(count);
    all.sort_unstable();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn event_matches_exactly_the_target_set() {
        let schema = interest_schema();
        let subs: Vec<Subscription> = (0..24).map(|b| interest_subscription(&schema, b)).collect();
        let matched = vec![3, 7, 12];
        let event = event_for(&schema, &matched);
        for (b, sub) in subs.iter().enumerate() {
            assert_eq!(
                sub.matches(&event),
                matched.contains(&(b as NodeId)),
                "broker {b}"
            );
        }
    }

    #[test]
    fn markers_are_prefix_free() {
        let schema = interest_schema();
        // <b1> must not fire on an event targeting broker 12 (or 21).
        let event = event_for(&schema, &[12, 21]);
        assert!(!interest_subscription(&schema, 1).matches(&event));
        assert!(!interest_subscription(&schema, 2).matches(&event));
        assert!(interest_subscription(&schema, 12).matches(&event));
        assert!(interest_subscription(&schema, 21).matches(&event));
    }

    #[test]
    fn random_set_size_tracks_popularity() {
        let mut rng = StdRng::seed_from_u64(1);
        for (pop, expect) in [(0.10, 2usize), (0.50, 12), (0.90, 22)] {
            let set = random_matched_set(24, pop, &mut rng);
            assert_eq!(set.len(), expect, "popularity {pop}");
            assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        }
    }

    #[test]
    fn popularity_extremes_clamped() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(random_matched_set(24, 0.0, &mut rng).len(), 1);
        assert_eq!(random_matched_set(24, 1.0, &mut rng).len(), 24);
    }
}
