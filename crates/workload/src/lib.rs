//! Workload generators for the subscription-summarization experiments.
//!
//! * [`PaperParams`] — the paper's Table 2 parameter space and derived
//!   workload shape (attributes per subscription, sweeps);
//! * [`Workload`] — subscriptions and events under the §5.1 model, with
//!   the subsumption probability controlling how often constraints
//!   collapse into canonical summary rows;
//! * [`popularity`] — interest workloads matching an exact random broker
//!   set per event (Fig. 10's popularity axis);
//! * [`StockFeed`] — a realistic stock-quote feed over the paper's Fig. 2
//!   schema for the runnable examples;
//! * [`Zipf`] — a Zipf-distributed rank sampler.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod generator;
mod params;
pub mod popularity;
mod stock;
mod zipf;

pub use generator::{experiment_schema, Workload};
pub use params::PaperParams;
pub use stock::{StockFeed, EXCHANGES, SYMBOLS};
pub use zipf::Zipf;
