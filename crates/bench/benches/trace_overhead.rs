//! Tracing tax on the hot publish path: the same seeded event stream
//! routed by the deterministic engine with the causal tracer **absent**
//! (the shipped default), **sampled 1-in-64** (the recommended always-on
//! setting), and **always-on** (every trace recorded).
//!
//! The disabled path must be free — product code pays one `Option` test
//! per message — and the 1-in-64 path must stay under a 5 % throughput
//! delta: the unsampled branch is a single splitmix64 mix and compare,
//! no clock read, no allocation (the telemetry crate's zero-alloc
//! harness enforces the no-allocation half of that claim).
//!
//! The harness is hand-rolled (no `criterion_main!`): with
//! `SUBSUM_BENCH_REPORT_ONLY` set, `main` skips criterion and only
//! writes `BENCH_trace_overhead.json` — per-mode publish throughput,
//! the relative overhead against the disabled baseline, and the span
//! accounting that proves the sampler actually sampled.

use std::sync::Arc;
use std::time::Instant;

use criterion::{BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use subsum_broker::SummaryPubSub;
use subsum_net::{NodeId, Topology};
use subsum_telemetry::trace::Tracer;
use subsum_telemetry::Json;
use subsum_types::Event;
use subsum_workload::{PaperParams, Workload};

/// Subscriptions per broker.
const SUBS_PER_BROKER: usize = 8;
/// Events in one measured pass.
const EVENTS: usize = 512;
/// Flight-recorder capacity per broker (large enough not to wrap).
const CAPACITY: usize = 1 << 16;
/// Sampling seed for the traced modes.
const TRACE_SEED: u64 = 0x7AACE;

/// The three measured modes: `0` = no tracer attached.
const MODES: [u64; 3] = [0, 64, 1];

fn mode_label(mode: u64) -> &'static str {
    match mode {
        0 => "disabled",
        1 => "always_on",
        _ => "one_in_64",
    }
}

/// Builds the publish fixture: a propagated system over the backbone
/// overlay and a seeded event stream, with a tracer attached for the
/// traced modes.
fn fixture(mode: u64) -> (SummaryPubSub, Vec<(NodeId, Event)>, Option<Arc<Tracer>>) {
    let topology = Topology::cable_wireless_24();
    let mut rng = StdRng::seed_from_u64(0x0EE7);
    let mut workload = Workload::new(PaperParams::default(), 0.5);
    let schema = workload.schema().clone();
    let mut sys = SummaryPubSub::new(topology.clone(), schema, 1000).expect("layout fits");
    for b in 0..topology.len() as u16 {
        for _ in 0..SUBS_PER_BROKER {
            let sub = workload.subscription(&mut rng);
            sys.subscribe(b, &sub).expect("layout fits");
        }
    }
    sys.propagate().expect("propagation succeeds");
    let tracer =
        (mode > 0).then(|| Arc::new(Tracer::new(topology.len(), CAPACITY, TRACE_SEED, mode)));
    if let Some(t) = &tracer {
        sys.set_tracer(Arc::clone(t));
    }
    let events: Vec<(NodeId, Event)> = (0..EVENTS)
        .map(|_| {
            (
                rng.gen_range(0..topology.len() as u16) as NodeId,
                workload.event(0.7, &mut rng),
            )
        })
        .collect();
    (sys, events, tracer)
}

fn publish_all(sys: &SummaryPubSub, events: &[(NodeId, Event)]) -> usize {
    events
        .iter()
        .map(|(b, e)| sys.publish(*b, e).deliveries.len())
        .sum()
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for mode in MODES {
        let (sys, events, _tracer) = fixture(mode);
        group.bench_with_input(
            BenchmarkId::new(mode_label(mode), EVENTS),
            &events,
            |b, events| b.iter(|| publish_all(&sys, events)),
        );
    }
    group.finish();
    emit_overhead_report();
}

/// Timed trials in report mode: quick in CI smoke, noise-robust
/// otherwise (the report takes the fastest trial per mode).
fn report_trials() -> usize {
    if std::env::var_os("SUBSUM_BENCH_REPORT_ONLY").is_some() {
        2
    } else {
        9
    }
}

/// Measures all three modes and writes `BENCH_trace_overhead.json` at
/// the workspace root.
fn emit_overhead_report() {
    let trials = report_trials();
    let mut sides = Vec::new();
    let mut baseline_eps = 0.0f64;
    for mode in MODES {
        let (sys, events, tracer) = fixture(mode);
        // Warm pass: first-touch scratch growth off the books.
        std::hint::black_box(publish_all(&sys, &events));
        let mut best = f64::MAX;
        for _ in 0..trials {
            let start = Instant::now();
            std::hint::black_box(publish_all(&sys, &events));
            best = best.min(start.elapsed().as_secs_f64());
        }
        let eps = EVENTS as f64 / best.max(1e-12);
        if mode == 0 {
            baseline_eps = eps;
        }
        let overhead_pct = if baseline_eps > 0.0 {
            (baseline_eps / eps - 1.0) * 100.0
        } else {
            0.0
        };
        let (spans, head_drops) = tracer
            .as_ref()
            .map(|t| (t.spans().len() as u64, t.head_drops()))
            .unwrap_or((0, 0));
        sides.push((
            mode_label(mode),
            Json::obj([
                ("sample_one_in", Json::UInt(mode)),
                ("events_per_sec", Json::Num(eps)),
                ("best_pass_secs", Json::Num(best)),
                ("overhead_pct", Json::Num(overhead_pct)),
                ("spans_recorded", Json::UInt(spans)),
                ("head_drops", Json::UInt(head_drops)),
            ]),
        ));
    }
    let report = Json::obj(
        [
            ("name", Json::Str("bench.trace_overhead".to_string())),
            (
                "scenario",
                Json::obj([
                    ("brokers", Json::UInt(24)),
                    ("subscriptions", Json::UInt((24 * SUBS_PER_BROKER) as u64)),
                    ("events", Json::UInt(EVENTS as u64)),
                    ("trials", Json::UInt(trials as u64)),
                    ("trace_seed", Json::UInt(TRACE_SEED)),
                ]),
            ),
        ]
        .into_iter()
        .chain(sides)
        .collect::<Vec<_>>(),
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trace_overhead.json");
    match std::fs::write(&path, report.to_json_string()) {
        Ok(()) => eprintln!("trace overhead report -> {}", path.display()),
        Err(e) => eprintln!("cannot write trace overhead report {}: {e}", path.display()),
    }
}

fn main() {
    if std::env::var_os("SUBSUM_BENCH_REPORT_ONLY").is_some() {
        emit_overhead_report();
        return;
    }
    let mut criterion = Criterion::default().configure_from_args();
    bench_trace_overhead(&mut criterion);
    criterion.final_summary();
}
