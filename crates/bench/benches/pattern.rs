//! Microbenchmarks of the glob-pattern engine: matching and the covering
//! (language inclusion) decision that SACS insertion relies on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use subsum_types::Pattern;

fn bench_pattern(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern");
    let patterns: Vec<Pattern> = [
        "microsoft",
        "m*t",
        "OT*",
        "*SE",
        "*market*",
        "a*b*c*d",
        "N*SE",
        "*",
    ]
    .iter()
    .map(|s| Pattern::parse(s).unwrap())
    .collect();
    let values = [
        "microsoft",
        "micronet",
        "NYSE",
        "OTE",
        "the market reacts to earnings",
        "aXbYcZd",
        "unrelated-value-here",
    ];

    group.throughput(Throughput::Elements((patterns.len() * values.len()) as u64));
    group.bench_function("matches_grid", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &patterns {
                for v in &values {
                    if p.matches(v) {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });

    group.throughput(Throughput::Elements(
        (patterns.len() * patterns.len()) as u64,
    ));
    group.bench_function("covers_grid", |b| {
        b.iter(|| {
            let mut covers = 0usize;
            for p in &patterns {
                for q in &patterns {
                    if p.covers(q) {
                        covers += 1;
                    }
                }
            }
            covers
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pattern);
criterion_main!(benches);
