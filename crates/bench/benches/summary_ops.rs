//! Microbenchmarks of the summary data structures: dissolution (insert),
//! multi-broker merging, and the wire codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_core::{ArithWidth, BrokerSummary, SummaryCodec};
use subsum_types::{BrokerId, IdLayout, LocalSubId, Subscription};
use subsum_workload::{PaperParams, Workload};

fn prepared(n: usize, subsumption: f64, seed: u64) -> (Vec<Subscription>, BrokerSummary) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut workload = Workload::new(PaperParams::default(), subsumption);
    let schema = workload.schema().clone();
    let subs = workload.subscriptions(n, &mut rng);
    let mut summary = BrokerSummary::new(schema);
    for (i, sub) in subs.iter().enumerate() {
        summary.insert(BrokerId(0), LocalSubId(i as u32), sub);
    }
    (subs, summary)
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    for &p in &[0.1, 0.9] {
        let (subs, _) = prepared(1000, p, 1);
        let schema = subsum_workload::experiment_schema(&PaperParams::default());
        group.throughput(Throughput::Elements(subs.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("dissolve_1000_subs", format!("p{}", (p * 100.0) as u32)),
            &subs,
            |b, subs| {
                b.iter(|| {
                    let mut s = BrokerSummary::new(schema.clone());
                    for (i, sub) in subs.iter().enumerate() {
                        s.insert(BrokerId(0), LocalSubId(i as u32), sub);
                    }
                    s.subscription_count()
                })
            },
        );
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    for &p in &[0.1, 0.9] {
        let (_, a) = prepared(500, p, 2);
        let (_, b) = prepared(500, p, 3);
        group.bench_with_input(
            BenchmarkId::new("merge_500_into_500", format!("p{}", (p * 100.0) as u32)),
            &(a, b),
            |bench, (a, b)| {
                bench.iter(|| {
                    let mut m = a.clone();
                    m.merge(b);
                    m.subscription_count()
                })
            },
        );
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let (_, summary) = prepared(1000, 0.5, 4);
    let schema = summary.schema().clone();
    let layout = IdLayout::new(24, 1024, schema.len() as u32).unwrap();
    let codec = SummaryCodec::new(layout, ArithWidth::Four);
    let bytes = codec.encode(&summary).unwrap();
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_1000_subs", |b| {
        b.iter(|| codec.encode(&summary).unwrap().len())
    });
    group.bench_function("decode_1000_subs", |b| {
        b.iter(|| codec.decode(&bytes, &schema).unwrap().subscription_count())
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_merge, bench_codec);
criterion_main!(benches);
