//! Paper Fig8 regeneration bench: runs the experiment once per
//! iteration at a reduced scale and prints the regenerated table.

use criterion::{criterion_group, criterion_main, Criterion};
use subsum_experiments::{fig8, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::fast();
    // Print the regenerated figure once so bench logs double as results.
    println!("{}", fig8::run(&cfg));
    let mut group = c.benchmark_group("fig8_bandwidth");
    group.sample_size(10);
    group.bench_function("reduced_sweep", |b| b.iter(|| fig8::run(&cfg).rows.len()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
