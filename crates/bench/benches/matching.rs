//! §5.2.4 — event-matching cost: the summary matcher (Algorithm 1)
//! against a naive per-subscription scan, for growing subscription
//! populations and both selective and popular events, plus a
//! high-row-count SACS scenario that isolates the pattern index's bucket
//! pruning against the retained full-scan reference, and a large-P
//! multi-attribute scenario that pits the compiled columnar match plan
//! (the production path) against both the retained dense epoch-counter
//! reference kernel and the plain-`SubscriptionId` scan reference.
//!
//! The harness is hand-rolled (no `criterion_main!`) so CI can smoke the
//! report writers without timing anything: with `SUBSUM_BENCH_REPORT_ONLY`
//! set, `main` skips criterion entirely and only emits the two JSON
//! reports. A full run writes them after the timed benches:
//!
//! * `BENCH_matching.json` — before/after matching throughput and
//!   latency percentiles (full scan vs pattern index) with the pruning
//!   counters from an instrumented pass;
//! * `BENCH_matching_stages.json` — a stage-level `RunReport` of one
//!   instrumented matching pass (recorder enabled only for that pass, so
//!   criterion's numbers are unaffected).

use std::time::Instant;

use criterion::{BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use subsum_core::{
    ArithWidth, BrokerSummary, MatchScratch, ShardScratch, ShardedSummary, SummaryCodec,
    SummaryStats,
};
use subsum_telemetry::{names, Json, RunReport};
use subsum_types::{
    stock_schema, BrokerId, Event, IdLayout, LocalSubId, Schema, StrOp, Subscription,
};
use subsum_workload::{PaperParams, Workload};

/// Alphabet for the SACS-heavy scenario's symbols and prefixes.
const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
/// Subscriptions in the SACS-heavy scenario.
const SACS_HEAVY_SUBS: usize = 5000;
/// Events per measured pass in the SACS-heavy scenario.
const SACS_HEAVY_EVENTS: usize = 256;
/// Subscriptions in the dense-kernel scenario.
const DENSE_SUBS: usize = 8000;
/// Events per measured pass in the dense-kernel scenario.
const DENSE_EVENTS: usize = 256;
/// Shards in the shard-scaling scenario.
const SCALING_SHARDS: usize = 8;
/// Worker-thread counts swept by the shard-scaling scenario.
const SCALING_WORKERS: [usize; 4] = [1, 2, 4, 8];

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let mut workload = Workload::new(PaperParams::default(), 0.7);
    let schema = workload.schema().clone();

    for &n in &[100usize, 1000, 5000] {
        let subs: Vec<Subscription> = workload.subscriptions(n, &mut rng);
        let mut summary = BrokerSummary::new(schema.clone());
        for (i, sub) in subs.iter().enumerate() {
            summary.insert(BrokerId(0), LocalSubId(i as u32), sub);
        }
        let selective: Vec<Event> = (0..64).map(|_| workload.event(0.2, &mut rng)).collect();
        let popular: Vec<Event> = (0..64).map(|_| workload.event(0.7, &mut rng)).collect();

        group.throughput(Throughput::Elements(selective.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("summary_selective", n),
            &selective,
            |b, events| {
                let mut scratch = MatchScratch::new();
                b.iter(|| {
                    events
                        .iter()
                        .map(|e| summary.match_event_into(e, &mut scratch).matched.len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("summary_popular", n),
            &popular,
            |b, events| {
                let mut scratch = MatchScratch::new();
                b.iter(|| {
                    events
                        .iter()
                        .map(|e| summary.match_event_into(e, &mut scratch).matched.len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("naive_scan", n), &popular, |b, events| {
            b.iter(|| {
                events
                    .iter()
                    .map(|e| subs.iter().filter(|s| s.matches(e)).count())
                    .sum::<usize>()
            })
        });
    }
    group.finish();

    // The SACS-heavy scenario: a summary whose string dimension holds
    // over a thousand incomparable prefix rows, where the pattern index
    // prunes all but one prefix bucket per query.
    let (summary, events) = sacs_heavy_fixture();
    let mut group = c.benchmark_group("sacs_heavy");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("indexed", SACS_HEAVY_SUBS),
        &events,
        |b, events| {
            let mut scratch = MatchScratch::new();
            b.iter(|| {
                events
                    .iter()
                    .map(|e| summary.match_event_into(e, &mut scratch).matched.len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("full_scan", SACS_HEAVY_SUBS),
        &events,
        |b, events| {
            b.iter(|| {
                events
                    .iter()
                    .map(|e| summary.match_event_scan(e).matched.len())
                    .sum::<usize>()
            })
        },
    );
    group.finish();

    // The dense-kernel scenario: a large multi-attribute paper workload
    // where every attribute contributes dense postings. The compiled
    // plan is the production path; the epoch-counter kernel over
    // `IdList` rows is the retained differential reference.
    let (summary, events, _schema) = dense_kernel_fixture();
    let mut group = c.benchmark_group("dense_kernel");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("compiled_plan", DENSE_SUBS),
        &events,
        |b, events| {
            let mut scratch = MatchScratch::new();
            b.iter(|| {
                events
                    .iter()
                    .map(|e| summary.match_event_into(e, &mut scratch).matched.len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("epoch_kernel", DENSE_SUBS),
        &events,
        |b, events| {
            let mut scratch = MatchScratch::new();
            b.iter(|| {
                events
                    .iter()
                    .map(|e| {
                        summary
                            .match_event_dense_into(e, &mut scratch)
                            .matched
                            .len()
                    })
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("full_scan", DENSE_SUBS),
        &events,
        |b, events| {
            b.iter(|| {
                events
                    .iter()
                    .map(|e| summary.match_event_scan(e).matched.len())
                    .sum::<usize>()
            })
        },
    );
    group.finish();

    emit_matching_report();
    emit_stage_report();
}

/// Builds the dense-kernel scenario: `DENSE_SUBS` subscriptions from the
/// paper's multi-attribute workload (arithmetic ranges, points and string
/// operators mixed per subscription) and popular events that touch many
/// rows, so the per-event candidate set is large and the counter kernel's
/// O(P) pass dominates.
fn dense_kernel_fixture() -> (BrokerSummary, Vec<Event>, Schema) {
    let mut rng = StdRng::seed_from_u64(0xD15E);
    let mut workload = Workload::new(PaperParams::default(), 0.7);
    let schema = workload.schema().clone();
    let subs: Vec<Subscription> = workload.subscriptions(DENSE_SUBS, &mut rng);
    let mut summary = BrokerSummary::new(schema.clone());
    for (i, sub) in subs.iter().enumerate() {
        summary.insert(BrokerId((i % 16) as u16), LocalSubId(i as u32), sub);
    }
    let events: Vec<Event> = (0..DENSE_EVENTS)
        .map(|_| workload.event(0.9, &mut rng))
        .collect();
    (summary, events, schema)
}

/// Builds the SACS-heavy scenario: `SACS_HEAVY_SUBS` subscriptions whose
/// two-character `symbol` prefixes cycle through the full 36×36 alphabet
/// square (≈1300 pairwise-incomparable SACS rows spread over 36 prefix
/// buckets), a sprinkle of suffix and substring subscriptions so the
/// suffix and residual buckets are populated too, and random four-char
/// symbols to match against.
fn sacs_heavy_fixture() -> (BrokerSummary, Vec<Event>) {
    let schema = stock_schema();
    let mut summary = BrokerSummary::new(schema.clone());
    let mut local = 0u32;
    let mut add = |summary: &mut BrokerSummary, sub: &Subscription| {
        summary.insert(BrokerId(0), LocalSubId(local), sub);
        local += 1;
    };
    for i in 0..SACS_HEAVY_SUBS {
        let prefix = format!(
            "{}{}",
            CHARS[i % CHARS.len()] as char,
            CHARS[(i / CHARS.len()) % CHARS.len()] as char
        );
        let sub = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Prefix, &prefix)
            .unwrap()
            .build()
            .unwrap();
        add(&mut summary, &sub);
    }
    for (op, v) in [
        (StrOp::Suffix, "XX"),
        (StrOp::Suffix, "Q7"),
        (StrOp::Contains, "ZZ"),
        (StrOp::Contains, "J2"),
    ] {
        let sub = Subscription::builder(&schema)
            .str_op("symbol", op, v)
            .unwrap()
            .build()
            .unwrap();
        add(&mut summary, &sub);
    }

    let mut rng = StdRng::seed_from_u64(0x5AC5);
    let events: Vec<Event> = (0..SACS_HEAVY_EVENTS)
        .map(|_| {
            let symbol: String = (0..4)
                .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
                .collect();
            Event::builder(&schema)
                .str("symbol", symbol)
                .unwrap()
                .build()
        })
        .collect();
    (summary, events)
}

/// Times one matcher over repeated passes of the event set; returns
/// sorted per-event latencies in microseconds and overall events/sec.
fn measure(events: &[Event], passes: usize, mut f: impl FnMut(&Event) -> usize) -> (Vec<f64>, f64) {
    let mut samples = Vec::with_capacity(events.len() * passes);
    let mut total = 0usize;
    let wall = Instant::now();
    for _ in 0..passes {
        for e in events {
            let t = Instant::now();
            total += f(e);
            samples.push(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    let secs = wall.elapsed().as_secs_f64();
    std::hint::black_box(total);
    samples.sort_unstable_by(f64::total_cmp);
    let events_per_sec = samples.len() as f64 / secs.max(1e-12);
    (samples, events_per_sec)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn side_json(sorted: &[f64], events_per_sec: f64) -> Json {
    Json::obj([
        ("events_per_sec", Json::Num(events_per_sec)),
        ("p50_us", Json::Num(percentile(sorted, 0.50))),
        ("p99_us", Json::Num(percentile(sorted, 0.99))),
    ])
}

/// Measures the SACS-heavy scenario before (full scan) and after
/// (pattern index + scratch reuse) and the dense-kernel scenario before
/// (plain-id scan) and after (epoch-counter kernel), runs instrumented
/// passes for the pruning and intern-table counters, and writes
/// `BENCH_matching.json` at the workspace root.
fn emit_matching_report() {
    let (summary, events) = sacs_heavy_fixture();
    let passes = report_passes();
    let mut scratch = MatchScratch::new();

    // Warm both paths so first-touch growth is off the books.
    let warm: usize = events
        .iter()
        .map(|e| summary.match_event_into(e, &mut scratch).matched.len())
        .sum();
    std::hint::black_box(warm);

    let (scan_lat, scan_eps) = measure(&events, passes, |e| {
        summary.match_event_scan(e).matched.len()
    });
    let (idx_lat, idx_eps) = measure(&events, passes, |e| {
        summary.match_event_into(e, &mut scratch).matched.len()
    });

    // One instrumented pass for the work counters; the recorder is off
    // during the timed loops above.
    subsum_telemetry::set_enabled(true);
    subsum_telemetry::reset();
    let mut rows_scanned = 0usize;
    let mut rows_pruned = 0usize;
    for e in &events {
        let stats = &summary.match_event_into(e, &mut scratch).stats;
        rows_scanned += stats.rows_scanned;
        rows_pruned += stats.rows_pruned;
    }
    subsum_telemetry::set_enabled(false);
    let counters: std::collections::BTreeMap<String, u64> =
        subsum_telemetry::counters_snapshot().into_iter().collect();
    let counter = |name: &str| Json::UInt(counters.get(name).copied().unwrap_or(0));

    // The dense-kernel scenario: before is the plain-`SubscriptionId`
    // scan reference, after is the epoch-counter kernel over dense
    // postings with a reused scratch.
    let (dense_summary, dense_events, dense_schema) = dense_kernel_fixture();
    let mut dense_scratch = MatchScratch::new();
    let warm: usize = dense_events
        .iter()
        .map(|e| {
            dense_summary
                .match_event_into(e, &mut dense_scratch)
                .matched
                .len()
        })
        .sum();
    std::hint::black_box(warm);

    let (dense_scan_lat, dense_scan_eps) = measure(&dense_events, passes, |e| {
        dense_summary.match_event_scan(e).matched.len()
    });
    let (dense_ker_lat, dense_ker_eps) = measure(&dense_events, passes, |e| {
        dense_summary
            .match_event_dense_into(e, &mut dense_scratch)
            .matched
            .len()
    });

    // The compiled-plan kernel over the same scenario: the production
    // match path probes the frozen SoA plan; the dense kernel above is
    // the retained differential reference.
    let (plan_lat, plan_eps) = measure(&dense_events, passes, |e| {
        dense_summary
            .match_event_into(e, &mut dense_scratch)
            .matched
            .len()
    });

    // Plan-build amortization: an insert/remove pair leaves the rows
    // unchanged (the churn subscription can never match) but invalidates
    // the cached plan, so the next match compiles it before probing.
    // The build cost is the first-match latency minus the steady-state
    // median, expressed in events needed to amortize one build.
    let mut churn_summary = dense_summary.clone();
    let mut build_lat = Vec::new();
    const BUILD_TRIALS: usize = 16;
    for t in 0..BUILD_TRIALS {
        let churn = Subscription::builder(&dense_schema)
            .num("num0", subsum_types::NumOp::Ge, 1.0e9)
            .unwrap()
            .build()
            .unwrap();
        let id = churn_summary.insert(BrokerId(15), LocalSubId(70_000 + t as u32), &churn);
        churn_summary.remove(id);
        let e = &dense_events[t % dense_events.len()];
        let t0 = Instant::now();
        std::hint::black_box(
            churn_summary
                .match_event_into(e, &mut dense_scratch)
                .matched
                .len(),
        );
        build_lat.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    build_lat.sort_unstable_by(f64::total_cmp);
    let steady_p50 = percentile(&plan_lat, 0.50);
    let build_p50 = (percentile(&build_lat, 0.50) - steady_p50).max(0.0);
    let amortize_events = build_p50 / steady_p50.max(1e-12);

    // Instrumented compiled-plan pass: one more invalidation, so the
    // pass records exactly one lazy plan rebuild, and a warm scratch, so
    // `match.scratch_grows` proves steady-state zero growth.
    subsum_telemetry::set_enabled(true);
    subsum_telemetry::reset();
    let churn = Subscription::builder(&dense_schema)
        .num("num0", subsum_types::NumOp::Ge, 1.0e9)
        .unwrap()
        .build()
        .unwrap();
    let id = churn_summary.insert(BrokerId(15), LocalSubId(80_000), &churn);
    churn_summary.remove(id);
    let mut plan_matched = 0usize;
    for e in &dense_events {
        plan_matched += churn_summary
            .match_event_into(e, &mut dense_scratch)
            .matched
            .len();
    }
    subsum_telemetry::set_enabled(false);
    let plan_counters: std::collections::BTreeMap<String, u64> =
        subsum_telemetry::counters_snapshot().into_iter().collect();
    let plan_counter = |name: &str| Json::UInt(plan_counters.get(name).copied().unwrap_or(0));

    // Instrumented pass for the intern-table counters: a wire round-trip
    // forces a full intern rebuild on decode, then matching the decoded
    // summary through the reference kernel accumulates dense-hit and
    // scratch-reuse counts.
    subsum_telemetry::set_enabled(true);
    subsum_telemetry::reset();
    let codec = SummaryCodec::new(
        IdLayout::new(16, DENSE_SUBS as u64, dense_schema.len() as u32).unwrap(),
        ArithWidth::Eight,
    );
    let decoded = codec
        .decode(&codec.encode(&dense_summary).unwrap(), &dense_schema)
        .unwrap();
    let mut dense_matched = 0usize;
    for e in &dense_events {
        dense_matched += decoded
            .match_event_dense_into(e, &mut dense_scratch)
            .matched
            .len();
    }
    subsum_telemetry::set_enabled(false);
    let dense_counters: std::collections::BTreeMap<String, u64> =
        subsum_telemetry::counters_snapshot().into_iter().collect();
    let dense_counter = |name: &str| Json::UInt(dense_counters.get(name).copied().unwrap_or(0));

    let report = Json::obj([
        ("name", Json::Str("bench.matching".to_string())),
        ("machine", machine_json()),
        (
            "shard_scaling",
            shard_scaling_json(&dense_summary, &dense_events, passes),
        ),
        (
            "scenario",
            Json::obj([
                ("subscriptions", Json::UInt((SACS_HEAVY_SUBS + 4) as u64)),
                ("events", Json::UInt(events.len() as u64)),
                ("passes", Json::UInt(passes as u64)),
                (
                    "sacs_rows",
                    Json::UInt(SummaryStats::of(&summary).pattern_rows as u64),
                ),
            ]),
        ),
        ("before_full_scan", side_json(&scan_lat, scan_eps)),
        ("after_indexed", side_json(&idx_lat, idx_eps)),
        (
            "throughput_speedup",
            Json::Num(idx_eps / scan_eps.max(1e-12)),
        ),
        (
            "instrumented_pass",
            Json::obj([
                ("rows_scanned", Json::UInt(rows_scanned as u64)),
                ("rows_pruned", Json::UInt(rows_pruned as u64)),
                (names::SACS_INDEX_HITS, counter(names::SACS_INDEX_HITS)),
                (names::SACS_ROWS_PRUNED, counter(names::SACS_ROWS_PRUNED)),
                (
                    names::MATCH_SCRATCH_REUSE,
                    counter(names::MATCH_SCRATCH_REUSE),
                ),
            ]),
        ),
        (
            "dense_kernel",
            Json::obj([
                (
                    "scenario",
                    Json::obj([
                        ("subscriptions", Json::UInt(DENSE_SUBS as u64)),
                        ("events", Json::UInt(dense_events.len() as u64)),
                        ("passes", Json::UInt(passes as u64)),
                        ("matches_per_pass", Json::UInt(dense_matched as u64)),
                    ]),
                ),
                (
                    "before_full_scan",
                    side_json(&dense_scan_lat, dense_scan_eps),
                ),
                (
                    "after_dense_kernel",
                    side_json(&dense_ker_lat, dense_ker_eps),
                ),
                (
                    "throughput_speedup",
                    Json::Num(dense_ker_eps / dense_scan_eps.max(1e-12)),
                ),
                (
                    "instrumented_pass",
                    Json::obj([
                        (
                            names::MATCH_DENSE_HITS,
                            dense_counter(names::MATCH_DENSE_HITS),
                        ),
                        (
                            names::MATCH_INTERN_REBUILDS,
                            dense_counter(names::MATCH_INTERN_REBUILDS),
                        ),
                        (
                            names::MATCH_INTERN_RENUMBERS,
                            dense_counter(names::MATCH_INTERN_RENUMBERS),
                        ),
                        (
                            names::MATCH_SCRATCH_REUSE,
                            dense_counter(names::MATCH_SCRATCH_REUSE),
                        ),
                    ]),
                ),
            ]),
        ),
        (
            "compiled_kernel",
            Json::obj([
                (
                    "scenario",
                    Json::obj([
                        ("subscriptions", Json::UInt(DENSE_SUBS as u64)),
                        ("events", Json::UInt(dense_events.len() as u64)),
                        ("passes", Json::UInt(passes as u64)),
                        ("matches_per_pass", Json::UInt(plan_matched as u64)),
                    ]),
                ),
                ("events_per_sec", Json::Num(plan_eps)),
                ("p50_us", Json::Num(percentile(&plan_lat, 0.50))),
                ("p99_us", Json::Num(percentile(&plan_lat, 0.99))),
                (
                    "speedup_vs_dense",
                    Json::Num(plan_eps / dense_ker_eps.max(1e-12)),
                ),
                (
                    "speedup_vs_scan",
                    Json::Num(plan_eps / dense_scan_eps.max(1e-12)),
                ),
                (
                    "plan_build",
                    Json::obj([
                        ("builds_timed", Json::UInt(BUILD_TRIALS as u64)),
                        ("build_p50_us", Json::Num(build_p50)),
                        ("amortized_over_events", Json::Num(amortize_events)),
                    ]),
                ),
                (
                    "instrumented_pass",
                    Json::obj([
                        (
                            names::MATCH_PLAN_REBUILDS,
                            plan_counter(names::MATCH_PLAN_REBUILDS),
                        ),
                        (
                            names::MATCH_PLAN_PROBE_ROWS,
                            plan_counter(names::MATCH_PLAN_PROBE_ROWS),
                        ),
                        (
                            names::MATCH_SCRATCH_GROWS,
                            plan_counter(names::MATCH_SCRATCH_GROWS),
                        ),
                        (
                            names::MATCH_SCRATCH_REUSE,
                            plan_counter(names::MATCH_SCRATCH_REUSE),
                        ),
                    ]),
                ),
            ]),
        ),
    ]);

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_matching.json");
    match std::fs::write(&path, report.to_json_string()) {
        Ok(()) => eprintln!("matching report -> {}", path.display()),
        Err(e) => eprintln!("cannot write matching report {}: {e}", path.display()),
    }
}

/// Describes the machine the report was taken on, so scaling numbers can
/// be read in context (a 1-core container cannot show an 8-worker
/// speedup no matter how good the sharding is).
fn machine_json() -> Json {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    #[cfg(target_arch = "x86_64")]
    let cpu_features = {
        let mut f = Vec::new();
        if std::arch::is_x86_feature_detected!("sse2") {
            f.push(Json::Str("sse2".to_string()));
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            f.push(Json::Str("avx2".to_string()));
        }
        f
    };
    #[cfg(not(target_arch = "x86_64"))]
    let cpu_features: Vec<Json> = Vec::new();
    Json::obj([
        ("cores", Json::UInt(cores as u64)),
        ("arch", Json::Str(std::env::consts::ARCH.to_string())),
        ("os", Json::Str(std::env::consts::OS.to_string())),
        ("commit", Json::Str(commit)),
        ("cpu_features", Json::Arr(cpu_features)),
    ])
}

/// The shard-scaling scenario: the dense-kernel workload behind a
/// [`ShardedSummary`] with [`SCALING_SHARDS`] shards, matched
/// concurrently by 1/2/4/8 worker threads that each pin lock-free
/// snapshots through their own [`ShardScratch`]. Reported per worker
/// count: aggregate events/sec across all workers. An instrumented
/// single-worker pass (with subscription churn racing it) contributes
/// the shard fan-out, merge-time and snapshot counters.
fn shard_scaling_json(flat: &BrokerSummary, events: &[Event], passes: usize) -> Json {
    let sharded = ShardedSummary::from_flat(flat.clone(), SCALING_SHARDS);

    // Warm one scratch shape so the per-worker warmup below is cheap.
    let mut warm_scratch = ShardScratch::new();
    let warm: usize = events
        .iter()
        .map(|e| sharded.match_event_into(e, &mut warm_scratch).matched.len())
        .sum();
    std::hint::black_box(warm);

    let mut sweep = Vec::new();
    for &workers in &SCALING_WORKERS {
        let wall = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = ShardScratch::new();
                    let mut total = 0usize;
                    for _ in 0..passes {
                        for e in events {
                            total += sharded.match_event_into(e, &mut scratch).matched.len();
                        }
                    }
                    std::hint::black_box(total);
                });
            }
        });
        let secs = wall.elapsed().as_secs_f64();
        let matched = (workers * passes * events.len()) as f64;
        sweep.push((
            format!("workers_{workers}"),
            Json::obj([
                ("workers", Json::UInt(workers as u64)),
                ("events_per_sec", Json::Num(matched / secs.max(1e-12))),
            ]),
        ));
    }

    // Instrumented pass: one matcher racing live churn, so the snapshot
    // counters show actual pointer flips and deferred reclamations.
    subsum_telemetry::set_enabled(true);
    subsum_telemetry::reset();
    let mut scratch = ShardScratch::new();
    let schema = flat.schema().clone();
    for (i, e) in events.iter().enumerate() {
        std::hint::black_box(sharded.match_event_into(e, &mut scratch).matched.len());
        if i % 8 == 0 {
            let churn = Subscription::builder(&schema)
                .num("num0", subsum_types::NumOp::Ge, 1.0e9)
                .unwrap()
                .build()
                .unwrap();
            let id = sharded.insert(BrokerId(15), LocalSubId(60_000 + i as u32), &churn);
            sharded.remove(id);
        }
    }
    subsum_telemetry::set_enabled(false);
    let counters: std::collections::BTreeMap<String, u64> =
        subsum_telemetry::counters_snapshot().into_iter().collect();
    let counter = |name: &str| Json::UInt(counters.get(name).copied().unwrap_or(0));
    let stats = sharded.snapshot_stats();

    let mut fields = vec![
        ("shards".to_string(), Json::UInt(SCALING_SHARDS as u64)),
        ("events".to_string(), Json::UInt(events.len() as u64)),
        ("passes".to_string(), Json::UInt(passes as u64)),
    ];
    fields.extend(sweep);
    fields.push((
        "instrumented_pass".to_string(),
        Json::obj([
            (
                names::MATCH_SHARD_FANOUT,
                counter(names::MATCH_SHARD_FANOUT),
            ),
            (
                names::MATCH_SHARD_MERGE_NS,
                counter(names::MATCH_SHARD_MERGE_NS),
            ),
            (
                names::SUMMARY_SNAPSHOT_FLIPS,
                counter(names::SUMMARY_SNAPSHOT_FLIPS),
            ),
            (
                names::SUMMARY_DEFERRED_RECLAIMS,
                counter(names::SUMMARY_DEFERRED_RECLAIMS),
            ),
            ("snapshot_flips_total", Json::UInt(stats.flips)),
            ("limbo_after_pass", Json::UInt(stats.limbo as u64)),
        ]),
    ));
    Json::obj(fields)
}

/// Measured passes over the event set: a single quick pass in CI smoke
/// mode, enough samples for stable percentiles otherwise.
fn report_passes() -> usize {
    if std::env::var_os("SUBSUM_BENCH_REPORT_ONLY").is_some() {
        1
    } else {
        40
    }
}

/// Runs one instrumented matching pass and writes its `RunReport` to the
/// workspace root. Separate from the timed loops above: the recorder is
/// off while criterion measures and on only here.
fn emit_stage_report() {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let mut workload = Workload::new(PaperParams::default(), 0.7);
    let schema = workload.schema().clone();
    let n = 5000usize;
    let subs: Vec<Subscription> = workload.subscriptions(n, &mut rng);
    let events: Vec<Event> = (0..64).map(|_| workload.event(0.7, &mut rng)).collect();

    subsum_telemetry::set_enabled(true);
    subsum_telemetry::reset();
    let mut summary = BrokerSummary::new(schema);
    for (i, sub) in subs.iter().enumerate() {
        summary.insert(BrokerId(0), LocalSubId(i as u32), sub);
    }
    let matched: usize = events.iter().map(|e| summary.match_event(e).len()).sum();
    let mut report = RunReport::capture("bench.matching");
    subsum_telemetry::set_enabled(false);

    report.embed(
        "workload",
        Json::obj([
            ("subscriptions", Json::UInt(n as u64)),
            ("events", Json::UInt(events.len() as u64)),
            ("candidate_matches", Json::UInt(matched as u64)),
        ]),
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_matching_stages.json");
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => eprintln!("stage report -> {}", path.display()),
        Err(e) => eprintln!("cannot write stage report {}: {e}", path.display()),
    }
}

fn main() {
    if std::env::var_os("SUBSUM_BENCH_REPORT_ONLY").is_some() {
        // CI smoke mode: no timing, just prove the report writers run
        // end-to-end and leave the JSON artifacts behind.
        emit_matching_report();
        emit_stage_report();
        return;
    }
    let mut criterion = Criterion::default().configure_from_args();
    bench_matching(&mut criterion);
    criterion.final_summary();
}
