//! §5.2.4 — event-matching cost: the summary matcher (Algorithm 1)
//! against a naive per-subscription scan, for growing subscription
//! populations and both selective and popular events.
//!
//! After the timed runs, an instrumented pass (recorder enabled only for
//! that pass, so criterion's numbers are unaffected) writes a stage-level
//! `RunReport` to `BENCH_matching_stages.json` at the workspace root —
//! the start of the benchmark-trajectory record alongside the criterion
//! output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_core::BrokerSummary;
use subsum_telemetry::{Json, RunReport};
use subsum_types::{BrokerId, Event, LocalSubId, Subscription};
use subsum_workload::{PaperParams, Workload};

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let mut workload = Workload::new(PaperParams::default(), 0.7);
    let schema = workload.schema().clone();

    for &n in &[100usize, 1000, 5000] {
        let subs: Vec<Subscription> = workload.subscriptions(n, &mut rng);
        let mut summary = BrokerSummary::new(schema.clone());
        for (i, sub) in subs.iter().enumerate() {
            summary.insert(BrokerId(0), LocalSubId(i as u32), sub);
        }
        let selective: Vec<Event> = (0..64).map(|_| workload.event(0.2, &mut rng)).collect();
        let popular: Vec<Event> = (0..64).map(|_| workload.event(0.7, &mut rng)).collect();

        group.throughput(Throughput::Elements(selective.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("summary_selective", n),
            &selective,
            |b, events| {
                b.iter(|| {
                    events
                        .iter()
                        .map(|e| summary.match_event(e).len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("summary_popular", n),
            &popular,
            |b, events| {
                b.iter(|| {
                    events
                        .iter()
                        .map(|e| summary.match_event(e).len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("naive_scan", n), &popular, |b, events| {
            b.iter(|| {
                events
                    .iter()
                    .map(|e| subs.iter().filter(|s| s.matches(e)).count())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
    emit_stage_report();
}

/// Runs one instrumented matching pass and writes its `RunReport` to the
/// workspace root. Separate from the timed loops above: the recorder is
/// off while criterion measures and on only here.
fn emit_stage_report() {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let mut workload = Workload::new(PaperParams::default(), 0.7);
    let schema = workload.schema().clone();
    let n = 5000usize;
    let subs: Vec<Subscription> = workload.subscriptions(n, &mut rng);
    let events: Vec<Event> = (0..64).map(|_| workload.event(0.7, &mut rng)).collect();

    subsum_telemetry::set_enabled(true);
    subsum_telemetry::reset();
    let mut summary = BrokerSummary::new(schema);
    for (i, sub) in subs.iter().enumerate() {
        summary.insert(BrokerId(0), LocalSubId(i as u32), sub);
    }
    let matched: usize = events.iter().map(|e| summary.match_event(e).len()).sum();
    let mut report = RunReport::capture("bench.matching");
    subsum_telemetry::set_enabled(false);

    report.embed(
        "workload",
        Json::obj([
            ("subscriptions", Json::UInt(n as u64)),
            ("events", Json::UInt(events.len() as u64)),
            ("candidate_matches", Json::UInt(matched as u64)),
        ]),
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_matching_stages.json");
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => eprintln!("stage report -> {}", path.display()),
        Err(e) => eprintln!("cannot write stage report {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
