//! §5.2.4 — event-matching cost: the summary matcher (Algorithm 1)
//! against a naive per-subscription scan, for growing subscription
//! populations and both selective and popular events.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_core::BrokerSummary;
use subsum_types::{BrokerId, Event, LocalSubId, Subscription};
use subsum_workload::{PaperParams, Workload};

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let mut workload = Workload::new(PaperParams::default(), 0.7);
    let schema = workload.schema().clone();

    for &n in &[100usize, 1000, 5000] {
        let subs: Vec<Subscription> = workload.subscriptions(n, &mut rng);
        let mut summary = BrokerSummary::new(schema.clone());
        for (i, sub) in subs.iter().enumerate() {
            summary.insert(BrokerId(0), LocalSubId(i as u32), sub);
        }
        let selective: Vec<Event> = (0..64).map(|_| workload.event(0.2, &mut rng)).collect();
        let popular: Vec<Event> = (0..64).map(|_| workload.event(0.7, &mut rng)).collect();

        group.throughput(Throughput::Elements(selective.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("summary_selective", n),
            &selective,
            |b, events| {
                b.iter(|| {
                    events
                        .iter()
                        .map(|e| summary.match_event(e).len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("summary_popular", n),
            &popular,
            |b, events| {
                b.iter(|| {
                    events
                        .iter()
                        .map(|e| summary.match_event(e).len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("naive_scan", n), &popular, |b, events| {
            b.iter(|| {
                events
                    .iter()
                    .map(|e| subs.iter().filter(|s| s.matches(e)).count())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
