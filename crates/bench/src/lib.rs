//! Benchmark harness for the subscription-summarization reproduction.
//!
//! One Criterion bench per paper table/figure plus microbenchmarks:
//!
//! * `fig8_bandwidth`, `fig9_hops`, `fig10_event_hops`, `fig11_storage` —
//!   regenerate the corresponding figure (each bench prints the table it
//!   measured);
//! * `matching` — §5.2.4 matching cost, summary vs naive scan;
//! * `summary_ops` — insert/merge/encode/decode throughput;
//! * `pattern` — glob matching and covering micro-costs.
//!
//! Run all of them with `cargo bench --workspace`.

#![forbid(unsafe_code)]
