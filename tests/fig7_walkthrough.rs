//! End-to-end reproduction of the paper's worked examples on the Fig. 7
//! topology, exercised through the public facade:
//!
//! * §4.2 Example — the iteration-by-iteration propagation schedule and
//!   the final `Merged_Brokers` knowledge at each broker;
//! * §4.3 Example 3 — the BROCLI walk of an event matching (paper)
//!   brokers 4, 8 and 13, published at broker 1.
//!
//! Paper broker *k* is node *k − 1* throughout.

use std::collections::BTreeSet;

use subsum::broker::SummaryPubSub;
use subsum::net::Topology;
use subsum::types::{stock_schema, Event, NumOp, Subscription};

fn system_with_interests(
    interested: &[u16],
) -> (SummaryPubSub, Vec<subsum::types::SubscriptionId>) {
    let schema = stock_schema();
    let mut sys = SummaryPubSub::new(Topology::fig7_tree(), schema.clone(), 100).unwrap();
    let mut ids = Vec::new();
    for b in 0..13u16 {
        // Interested brokers watch price 42; the rest a broker-unique
        // price that never fires.
        let price = if interested.contains(&b) {
            42.0
        } else {
            -(1000.0 + b as f64)
        };
        let sub = Subscription::builder(&schema)
            .num("price", NumOp::Eq, price)
            .unwrap()
            .build()
            .unwrap();
        ids.push(sys.subscribe(b, &sub).unwrap());
    }
    (sys, ids)
}

#[test]
fn propagation_schedule_matches_paper_example() {
    let (mut sys, _) = system_with_interests(&[]);
    let outcome = sys.propagate().unwrap();

    // Iteration 1: the seven leaves (paper 1, 3, 4, 6, 9, 12, 13) send to
    // their only neighbors.
    let it1: Vec<(u16, u16)> = outcome
        .sends
        .iter()
        .filter(|s| s.iteration == 1)
        .map(|s| (s.from + 1, s.to + 1)) // paper numbering
        .collect();
    assert_eq!(
        it1,
        vec![(1, 2), (3, 5), (4, 5), (6, 5), (9, 8), (12, 11), (13, 11)]
    );

    // Iteration 2: broker 2 → 5; brokers 7 and 10 choose broker 8 (the
    // smallest-degree admissible neighbor, lowest id on ties) — one of
    // the two serializations the paper's text allows.
    let it2: Vec<(u16, u16)> = outcome
        .sends
        .iter()
        .filter(|s| s.iteration == 2)
        .map(|s| (s.from + 1, s.to + 1))
        .collect();
    assert_eq!(it2, vec![(2, 5), (7, 8), (10, 8)]);

    // No broker of degree 3+ has an equal-or-higher-degree neighbor left:
    // iterations 3–5 are silent, and the phase used fewer hops than
    // brokers.
    assert!(outcome.sends.iter().all(|s| s.iteration <= 2));
    assert_eq!(outcome.hops(), 10);

    // Final knowledge: paper broker 5 knows brokers 1–6; broker 8 knows
    // 7–10; broker 11 knows 11–13.
    let knows = |node: usize| -> BTreeSet<u16> {
        outcome.stored[node]
            .merged_brokers
            .iter()
            .map(|b| b + 1)
            .collect()
    };
    assert_eq!(knows(4), (1..=6).collect());
    assert_eq!(knows(7), (7..=10).collect());
    assert_eq!(knows(10), (11..=13).collect());
}

#[test]
fn event_routing_walkthrough_matches_example3() {
    // Event matching paper brokers 4, 8, 13 arrives at paper broker 1.
    let (mut sys, ids) = system_with_interests(&[3, 7, 12]);
    sys.propagate().unwrap();
    let schema = sys.schema().clone();
    let event = Event::builder(&schema).num("price", 42.0).unwrap().build();
    let out = sys.publish(0, &event);

    // Paper walk: 1 (no match) → 5 (match for 4) → 8 (local match) →
    // 11 (match for 13), then BROCLI is complete.
    let visits_paper: Vec<u16> = out.routing.visits.iter().map(|v| v + 1).collect();
    assert_eq!(visits_paper, vec![1, 5, 8, 11]);

    // Deliveries: exactly the three interested brokers, verified exactly.
    let mut delivered: Vec<u16> = out.deliveries.iter().map(|d| d.owner + 1).collect();
    delivered.sort();
    assert_eq!(delivered, vec![4, 8, 13]);
    assert!(out.false_positives.is_empty());
    for d in &out.deliveries {
        assert!(ids.contains(&d.id));
    }

    // Hops: forwards 1→5→8→11 plus notifications 5→4 and 11→13
    // (broker 8's own match is local).
    assert_eq!(out.routing.forward_hops, 3);
    assert_eq!(out.routing.notify_hops, 2);
}

#[test]
fn every_publisher_reaches_all_interested_brokers() {
    let (mut sys, _) = system_with_interests(&[3, 7, 12]);
    sys.propagate().unwrap();
    let schema = sys.schema().clone();
    let event = Event::builder(&schema).num("price", 42.0).unwrap().build();
    for publisher in 0..13u16 {
        let out = sys.publish(publisher, &event);
        let mut delivered: Vec<u16> = out.deliveries.iter().map(|d| d.owner).collect();
        delivered.sort();
        delivered.dedup();
        assert_eq!(delivered, vec![3, 7, 12], "publisher {publisher}");
        assert!(out.routing.visits.len() <= 13);
    }
}
