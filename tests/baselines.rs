//! Integration checks of the reconstructed baselines against each other
//! and against the summary system: the orderings the paper reports must
//! emerge from the implementations, not from the plotting.

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum::broker::propagate;
use subsum::core::{ArithWidth, BrokerSummary, SizeParams, SummaryCodec, SummaryStats};
use subsum::net::Topology;
use subsum::siena::{
    broadcast_cost, broadcast_storage_bytes, propagate_probabilistic, reverse_path_route,
    SienaParams,
};
use subsum::types::{BrokerId, IdLayout, LocalSubId};
use subsum::workload::{PaperParams, Workload};

fn own_summaries(
    topology: &Topology,
    subsumption: f64,
    sigma: usize,
    seed: u64,
) -> (Vec<BrokerSummary>, SummaryCodec) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut workload = Workload::new(PaperParams::default(), subsumption);
    let schema = workload.schema().clone();
    let layout =
        IdLayout::new(topology.len() as u64, sigma as u64 + 1, schema.len() as u32).unwrap();
    let codec = SummaryCodec::new(layout, ArithWidth::Four);
    let own = (0..topology.len())
        .map(|b| {
            let mut s = BrokerSummary::new(schema.clone());
            for i in 0..sigma {
                let sub = workload.subscription(&mut rng);
                s.insert(BrokerId(b as u16), LocalSubId(i as u32), &sub);
            }
            s
        })
        .collect();
    (own, codec)
}

#[test]
fn bandwidth_ordering_broadcast_siena_summary() {
    let topology = Topology::cable_wireless_24();
    let sigma = 100;
    let mut rng = StdRng::seed_from_u64(7);
    let broadcast = broadcast_cost(&topology, sigma, 50).bytes();
    let siena = propagate_probabilistic(
        &topology,
        sigma,
        SienaParams {
            subsumption_max: 0.5,
            sub_size: 50,
        },
        &mut rng,
    )
    .metrics
    .link_bytes;
    let (own, codec) = own_summaries(&topology, 0.5, sigma, 7);
    let summary = propagate(&topology, &own, &codec)
        .unwrap()
        .metrics
        .link_bytes;
    assert!(broadcast > siena, "broadcast {broadcast} vs siena {siena}");
    assert!(siena > summary, "siena {siena} vs summary {summary}");
    // The paper's headline factor: summaries beat Siena by several times.
    assert!(
        siena as f64 / summary as f64 > 2.0,
        "expected a multi-x gain, got {}",
        siena as f64 / summary as f64
    );
}

#[test]
fn storage_ordering_matches_fig11() {
    let topology = Topology::cable_wireless_24();
    let outstanding = 200;
    let mut rng = StdRng::seed_from_u64(8);
    let broadcast = broadcast_storage_bytes(topology.len(), outstanding, 50);
    let siena = propagate_probabilistic(
        &topology,
        outstanding,
        SienaParams {
            subsumption_max: 0.1,
            sub_size: 50,
        },
        &mut rng,
    )
    .storage_bytes(50);
    let (own, codec) = own_summaries(&topology, 0.1, outstanding, 8);
    let stored = propagate(&topology, &own, &codec).unwrap().stored;
    let summary: usize = stored
        .iter()
        .map(|m| SummaryStats::of(&m.summary).total_size(SizeParams::default()))
        .sum();
    assert!(siena <= broadcast);
    assert!(
        (summary as u64) < siena,
        "summary {summary} vs siena {siena}"
    );
}

#[test]
fn propagation_hops_summary_far_below_siena() {
    let topology = Topology::cable_wireless_24();
    let mut rng = StdRng::seed_from_u64(9);
    let siena = propagate_probabilistic(
        &topology,
        1,
        SienaParams {
            subsumption_max: 0.1,
            sub_size: 50,
        },
        &mut rng,
    )
    .hops();
    let (own, codec) = own_summaries(&topology, 0.1, 1, 9);
    let summary = propagate(&topology, &own, &codec).unwrap().hops();
    // Siena near-floods (→ B·(B−1) = 552); summaries use < B hops.
    assert!(siena > 300, "siena hops {siena}");
    assert!(summary <= 24, "summary hops {summary}");
}

#[test]
fn siena_reverse_paths_are_shortest_path_unions() {
    let topology = Topology::cable_wireless_24();
    for publisher in [0u16, 11, 23] {
        let d = topology.distances(publisher);
        for target in 0..24u16 {
            if target == publisher {
                continue;
            }
            let hops = reverse_path_route(&topology, publisher, &[target]).hops();
            assert_eq!(hops as u32, d[target as usize]);
        }
    }
}
