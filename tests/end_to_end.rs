//! Cross-crate integration tests: delivery completeness and exactness of
//! the whole system against an omniscient oracle, across topologies,
//! workloads and both execution engines (deterministic and threaded).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use subsum::broker::runtime::BrokerNetwork;
use subsum::broker::SummaryPubSub;
use subsum::net::Topology;
use subsum::types::{Event, SubscriptionId};
use subsum::workload::{PaperParams, StockFeed, Workload};

/// Deliveries must equal the oracle (exact matches over all brokers) for
/// every event — completeness AND soundness after tier-2 verification.
#[test]
fn deliveries_equal_oracle_on_paper_workload() {
    let mut rng = StdRng::seed_from_u64(1);
    for topology in [
        Topology::fig7_tree(),
        Topology::cable_wireless_24(),
        Topology::grid(4, 3),
    ] {
        let n = topology.len();
        for &subsumption in &[0.1, 0.9] {
            let mut workload = Workload::new(PaperParams::default(), subsumption);
            let schema = workload.schema().clone();
            let mut sys = SummaryPubSub::new(topology.clone(), schema.clone(), 1000).unwrap();
            for b in 0..n as u16 {
                for sub in workload.subscriptions(20, &mut rng) {
                    sys.subscribe(b, &sub).unwrap();
                }
            }
            sys.propagate().unwrap();
            for _ in 0..30 {
                let event = workload.event(0.8, &mut rng);
                let publisher = rng.gen_range(0..n as u16);
                let out = sys.publish(publisher, &event);
                let mut got: Vec<SubscriptionId> = out.deliveries.iter().map(|d| d.id).collect();
                got.sort();
                assert_eq!(
                    got,
                    sys.oracle_matches(&event),
                    "topology {n} nodes, p={subsumption}, publisher {publisher}"
                );
            }
        }
    }
}

/// The threaded runtime delivers exactly what the deterministic engine
/// delivers, on a realistic stock workload.
#[test]
fn threaded_and_deterministic_engines_agree_on_stock_feed() {
    let topology = Topology::cable_wireless_24();
    let mut feed = StockFeed::new();
    let schema = feed.schema().clone();
    let mut rng = StdRng::seed_from_u64(2);

    let mut det = SummaryPubSub::new(topology.clone(), schema.clone(), 1000).unwrap();
    let net = BrokerNetwork::start(topology, schema.clone(), 1000).unwrap();
    for b in 0..24u16 {
        for _ in 0..4 {
            let sub = feed.trader_subscription(&mut rng);
            det.subscribe(b, &sub).unwrap();
            net.subscribe(b, &sub).unwrap();
        }
    }
    det.propagate().unwrap();
    net.propagate();

    for _ in 0..50 {
        let quote = feed.quote(&mut rng);
        let publisher = rng.gen_range(0..24u16);
        let mut a: Vec<SubscriptionId> = det
            .publish(publisher, &quote)
            .deliveries
            .iter()
            .map(|d| d.id)
            .collect();
        let mut b: Vec<SubscriptionId> = net
            .publish(publisher, &quote)
            .iter()
            .map(|d| d.id)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Both equal the oracle.
        assert_eq!(a, det.oracle_matches(&quote));
    }
    net.shutdown();
}

/// Unsubscribing in the middle of a session never yields stale
/// deliveries, and re-propagation restores minimal state.
#[test]
fn churn_session() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut workload = Workload::new(PaperParams::default(), 0.5);
    let schema = workload.schema().clone();
    let mut sys = SummaryPubSub::new(Topology::ring(8), schema.clone(), 1000).unwrap();

    let mut live: Vec<SubscriptionId> = Vec::new();
    for round in 0..5 {
        // Add a few subscriptions at random brokers.
        for _ in 0..10 {
            let b = rng.gen_range(0..8u16);
            let sub = workload.subscription(&mut rng);
            live.push(sys.subscribe(b, &sub).unwrap());
        }
        // Remove a random third of what is live.
        live.retain(|&id| {
            if rng.gen::<f64>() < 0.33 {
                assert!(sys.unsubscribe(id));
                false
            } else {
                true
            }
        });
        sys.propagate().unwrap();
        for _ in 0..10 {
            let event = workload.event(0.8, &mut rng);
            let publisher = rng.gen_range(0..8u16);
            let out = sys.publish(publisher, &event);
            let mut got: Vec<SubscriptionId> = out.deliveries.iter().map(|d| d.id).collect();
            got.sort();
            assert_eq!(got, sys.oracle_matches(&event), "round {round}");
            for d in &out.deliveries {
                assert!(live.contains(&d.id), "stale delivery {:?}", d.id);
            }
        }
    }
}

/// Propagation coverage and bounded hops hold on random topologies.
#[test]
fn random_topologies_coverage() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..5 {
        let n = rng.gen_range(4..40);
        let topology = Topology::random_connected(n, n / 3, &mut rng);
        let mut workload = Workload::new(PaperParams::default(), 0.5);
        let schema = workload.schema().clone();
        let mut sys = SummaryPubSub::new(topology, schema.clone(), 100).unwrap();
        for b in 0..n as u16 {
            let sub = workload.subscription(&mut rng);
            sys.subscribe(b, &sub).unwrap();
        }
        let outcome = sys.propagate().unwrap();
        assert!(outcome.covers_all_brokers());
        assert!(outcome.hops() <= n as u64);
        let event = workload.event(0.9, &mut rng);
        let out = sys.publish(0, &event);
        let mut got: Vec<SubscriptionId> = out.deliveries.iter().map(|d| d.id).collect();
        got.sort();
        assert_eq!(got, sys.oracle_matches(&event));
    }
}

/// Incremental (delta) propagation: new subscriptions become visible,
/// old ones keep working, and the period's bandwidth tracks the batch
/// size rather than the outstanding population.
#[test]
fn incremental_propagation_periods() {
    use subsum::types::{NumOp, Subscription};
    let mut rng = StdRng::seed_from_u64(9);
    let mut workload = Workload::new(PaperParams::default(), 0.5);
    let schema = workload.schema().clone();
    let mut sys =
        SummaryPubSub::new(Topology::cable_wireless_24(), schema.clone(), 10_000).unwrap();

    // Period 0: a large base population, full propagation.
    for b in 0..24u16 {
        for sub in workload.subscriptions(100, &mut rng) {
            sys.subscribe(b, &sub).unwrap();
        }
    }
    let full_bytes = sys.propagate().unwrap().metrics.payload_bytes;

    // Period 1: a small batch, incremental propagation.
    let marker = Subscription::builder(&schema)
        .num("num0", NumOp::Eq, 777_777.0)
        .unwrap()
        .build()
        .unwrap();
    let marker_id = sys.subscribe(5, &marker).unwrap();
    for b in 0..24u16 {
        for sub in workload.subscriptions(2, &mut rng) {
            sys.subscribe(b, &sub).unwrap();
        }
    }
    let delta = sys.propagate_incremental().unwrap();
    assert!(
        delta.metrics.payload_bytes * 5 < full_bytes,
        "delta period ({}) should be far below the full period ({full_bytes})",
        delta.metrics.payload_bytes
    );

    // The new subscription is now reachable from anywhere…
    let event = Event::builder(&schema)
        .num("num0", 777_777.0)
        .unwrap()
        .build();
    for publisher in [0u16, 11, 23] {
        let out = sys.publish(publisher, &event);
        assert!(out.deliveries.iter().any(|d| d.id == marker_id));
    }
    // …and the whole system still matches the oracle.
    for _ in 0..20 {
        let event = workload.event(0.8, &mut rng);
        let publisher = rng.gen_range(0..24u16);
        let out = sys.publish(publisher, &event);
        let mut got: Vec<SubscriptionId> = out.deliveries.iter().map(|d| d.id).collect();
        got.sort();
        assert_eq!(got, sys.oracle_matches(&event));
    }

    // A second incremental period with nothing pending costs only the
    // near-empty summary skeletons.
    let idle = sys.propagate_incremental().unwrap();
    assert!(idle.metrics.payload_bytes < delta.metrics.payload_bytes);
}

/// Overlay topology change (the paper's slowly-changing ISP backbones):
/// after links change, re-propagation restores exact delivery.
#[test]
fn topology_change_and_repropagation() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut workload = Workload::new(PaperParams::default(), 0.5);
    let schema = workload.schema().clone();
    let mut sys = SummaryPubSub::new(Topology::ring(10), schema.clone(), 100).unwrap();
    for b in 0..10u16 {
        for sub in workload.subscriptions(5, &mut rng) {
            sys.subscribe(b, &sub).unwrap();
        }
    }
    sys.propagate().unwrap();
    let event = workload.event(0.9, &mut rng);
    let before = sys.oracle_matches(&event);
    assert_eq!(
        sys.publish(0, &event)
            .deliveries
            .iter()
            .map(|d| d.id)
            .collect::<Vec<_>>(),
        before
    );

    // Rewire: the ring becomes a random mesh with the same brokers.
    let new_topology = Topology::random_connected(10, 5, &mut rng);
    sys.set_topology(new_topology).unwrap();
    sys.propagate().unwrap();
    for publisher in 0..10u16 {
        let out = sys.publish(publisher, &event);
        let mut got: Vec<SubscriptionId> = out.deliveries.iter().map(|d| d.id).collect();
        got.sort();
        assert_eq!(got, before, "publisher {publisher} after rewire");
    }

    // Changing the broker count is rejected.
    assert!(sys.set_topology(Topology::ring(11)).is_err());
}
