//! Dynamic schema evolution (the paper's §6 ongoing work): extending the
//! attribute schema at runtime while keeping existing subscriptions, ids
//! and summaries valid.

use subsum::broker::SummaryPubSub;
use subsum::net::Topology;
use subsum::types::{AttrKind, Event, NumOp, Schema, StrOp, Subscription, TypeError};

fn v1_schema() -> Schema {
    Schema::builder()
        .attr("symbol", AttrKind::String)
        .unwrap()
        .attr("price", AttrKind::Float)
        .unwrap()
        .build()
}

#[test]
fn extend_schema_keeps_old_subscriptions_working() {
    let v1 = v1_schema();
    let mut sys = SummaryPubSub::new(Topology::fig7_tree(), v1.clone(), 1000).unwrap();

    let old_sub = Subscription::builder(&v1)
        .str_op("symbol", StrOp::Eq, "OTE")
        .unwrap()
        .build()
        .unwrap();
    let old_id = sys.subscribe(2, &old_sub).unwrap();
    sys.propagate().unwrap();

    // Evolve: add a currency attribute.
    let v2 = v1
        .to_builder()
        .attr("currency", AttrKind::String)
        .unwrap()
        .build();
    sys.extend_schema(v2.clone()).unwrap();

    // New-schema subscriptions over the new attribute.
    let new_sub = Subscription::builder(&v2)
        .str_op("symbol", StrOp::Eq, "OTE")
        .unwrap()
        .str_op("currency", StrOp::Eq, "EUR")
        .unwrap()
        .build()
        .unwrap();
    let new_id = sys.subscribe(9, &new_sub).unwrap();
    sys.propagate().unwrap();

    // An event with the new attribute matches both generations.
    let event = Event::builder(&v2)
        .str("symbol", "OTE")
        .unwrap()
        .num("price", 8.4)
        .unwrap()
        .str("currency", "EUR")
        .unwrap()
        .build();
    let out = sys.publish(0, &event);
    let mut ids: Vec<_> = out.deliveries.iter().map(|d| d.id).collect();
    ids.sort();
    let mut expect = vec![old_id, new_id];
    expect.sort();
    assert_eq!(ids, expect);

    // An event without the new attribute still reaches the old
    // subscription only.
    let event = Event::builder(&v2).str("symbol", "OTE").unwrap().build();
    let out = sys.publish(5, &event);
    let ids: Vec<_> = out.deliveries.iter().map(|d| d.id).collect();
    assert_eq!(ids, vec![old_id]);
}

#[test]
fn non_extension_rejected() {
    let v1 = v1_schema();
    let mut sys = SummaryPubSub::new(Topology::line(2), v1, 100).unwrap();
    // Reordered attributes: not an extension.
    let reordered = Schema::builder()
        .attr("price", AttrKind::Float)
        .unwrap()
        .attr("symbol", AttrKind::String)
        .unwrap()
        .build();
    assert_eq!(
        sys.extend_schema(reordered).unwrap_err(),
        TypeError::NotAnExtension
    );
    // Narrowed schema: not an extension either.
    let narrowed = Schema::builder()
        .attr("symbol", AttrKind::String)
        .unwrap()
        .build();
    assert_eq!(
        sys.extend_schema(narrowed).unwrap_err(),
        TypeError::NotAnExtension
    );
}

#[test]
fn c3_mask_widens_but_old_ids_stay_valid() {
    let v1 = v1_schema();
    let mut sys = SummaryPubSub::new(Topology::line(3), v1.clone(), 100).unwrap();
    let sub = Subscription::builder(&v1)
        .num("price", NumOp::Lt, 10.0)
        .unwrap()
        .build()
        .unwrap();
    let id = sys.subscribe(0, &sub).unwrap();
    let old_mask = id.mask;

    let v2 = v1
        .to_builder()
        .attr("volume", AttrKind::Integer)
        .unwrap()
        .build();
    sys.extend_schema(v2.clone()).unwrap();
    sys.propagate().unwrap();

    let event = Event::builder(&v2)
        .num("price", 5.0)
        .unwrap()
        .int("volume", 1)
        .unwrap()
        .build();
    let out = sys.publish(2, &event);
    assert_eq!(out.deliveries.len(), 1);
    assert_eq!(out.deliveries[0].id.mask, old_mask);
}

#[test]
#[should_panic(expected = "requires a completed propagation")]
fn publish_after_extension_requires_repropagation() {
    let v1 = v1_schema();
    let mut sys = SummaryPubSub::new(Topology::line(2), v1.clone(), 100).unwrap();
    sys.propagate().unwrap();
    let v2 = v1
        .to_builder()
        .attr("volume", AttrKind::Integer)
        .unwrap()
        .build();
    sys.extend_schema(v2.clone()).unwrap();
    let event = Event::builder(&v2).int("volume", 1).unwrap().build();
    sys.publish(0, &event); // panics: summaries were invalidated
}
