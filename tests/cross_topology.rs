//! The paper states its results "are similar in all cases" across real
//! and artificial topologies (§5.2). These tests assert the headline
//! orderings of Figs. 8, 9 and 11 on every topology family the substrate
//! provides.

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum::experiments::{fig10, fig11, fig8, fig9, ExperimentConfig};
use subsum::net::Topology;

fn topologies() -> Vec<(&'static str, Topology)> {
    let mut rng = StdRng::seed_from_u64(33);
    vec![
        ("fig7_tree", Topology::fig7_tree()),
        ("backbone24", Topology::cable_wireless_24()),
        ("backbone33", Topology::isp_backbone_33()),
        ("grid4x5", Topology::grid(4, 5)),
        ("ba30", Topology::barabasi_albert(30, 2, &mut rng)),
        ("random20", Topology::random_connected(20, 8, &mut rng)),
    ]
}

fn cfg_for(topology: Topology) -> ExperimentConfig {
    ExperimentConfig {
        topology,
        trials: 2,
        events_per_broker: 4,
        sigma_sweep: vec![50],
        subsumption_sweep: vec![0.10, 0.90],
        popularity_sweep: vec![0.50],
        ..ExperimentConfig::default()
    }
}

#[test]
fn fig8_ordering_holds_on_every_topology() {
    for (name, topology) in topologies() {
        let t = fig8::run(&cfg_for(topology));
        for row in &t.rows {
            let (broadcast, siena10, summary10, siena90, summary90) =
                (row[1], row[2], row[3], row[4], row[5]);
            assert!(broadcast > siena10, "{name}: broadcast vs siena");
            assert!(summary10 < siena10, "{name}: summary vs siena p10");
            assert!(summary90 < siena90, "{name}: summary vs siena p90");
        }
    }
}

#[test]
fn fig9_summary_hops_below_broker_count_everywhere() {
    for (name, topology) in topologies() {
        let n = topology.len() as f64;
        let t = fig9::run(&cfg_for(topology));
        for row in &t.rows {
            assert!(row[2] <= n, "{name}: summary hops {} vs {n}", row[2]);
            assert!(
                row[1] > row[2],
                "{name}: siena {} vs summary {}",
                row[1],
                row[2]
            );
        }
    }
}

#[test]
fn fig10_summary_wins_mid_popularity_everywhere() {
    for (name, topology) in topologies() {
        let t = fig10::run(&cfg_for(topology));
        for row in &t.rows {
            // At 50% popularity the summary approach must at least tie
            // the pruned Siena model on every topology family.
            assert!(
                row[1] <= row[2] * 1.10,
                "{name}: summary {} vs siena {} at 50%",
                row[1],
                row[2]
            );
        }
    }
}

#[test]
fn fig11_storage_ordering_holds_on_every_topology() {
    for (name, topology) in topologies() {
        let t = fig11::run(&cfg_for(topology));
        for row in &t.rows {
            assert!(row[3] < row[2], "{name}: summary storage vs siena p10");
            assert!(row[5] < row[4], "{name}: summary storage vs siena p90");
            assert!(row[2] <= row[1], "{name}: siena storage vs broadcast");
        }
    }
}
